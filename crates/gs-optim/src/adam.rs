//! Adam optimiser for Gaussian models.
//!
//! 3DGS training keeps two Adam moment estimates per parameter (the reason a
//! Gaussian's training state is 4× its parameter count, §2.2).  CLM runs the
//! Adam update for offloaded Gaussians on a dedicated CPU thread, and — key
//! to the overlapped-CPU-Adam optimisation (§4.2.2) — is able to update any
//! *subset* of Gaussians as soon as their gradients are final.
//!
//! Every update path funnels through **one lane kernel**
//! ([`adam_update_lanes`]) that processes a fixed-width group of Gaussians
//! parameter-major (`block[param][lane]`): the inner loop touches
//! [`LANE_WIDTH`] consecutive `f32`s of the same parameter, which the
//! autovectoriser lowers to SIMD mul/div/sqrt.  The moment state itself
//! lives in a lane-chunked [`SoaParams`] store, so the dense path streams
//! whole chunks with no transposition at all.  The three drivers are
//! bit-identical by construction — each Gaussian's update is elementwise
//! independent, so grouping rows into lanes is pure scheduling:
//!
//! * [`GaussianAdam::step_dense`] / [`GaussianAdam::step_subset`] — the
//!   in-place path the synchronous trainer uses: indices are staged into
//!   lane blocks in order, updated, and scattered back;
//! * [`GaussianAdam::pack_subset`] → [`compute_packed`] →
//!   [`GaussianAdam::apply_packed`] — the shippable path: work items are
//!   plain `memcpy`able rows, so a dedicated CPU Adam worker thread can run
//!   the expensive math while the main thread keeps rendering, and the
//!   results are merged back with cheap copies;
//! * [`compute_packed_chunked`] — the parallel-chunk path: the packed items
//!   are split across the persistent compute pool so the CPU Adam lane
//!   scales with cores.
//!
//! The flat 59-float [`param_row`](GaussianModel::param_row) layout remains
//! the compatibility seam: work items, checkpoint exports
//! ([`AdamRowState`]) and pinned-row staging are all row-shaped on the wire;
//! only the resident moment state and the kernel's working set are
//! lane-chunked.

use crate::gradients::GradientBuffer;
use gs_core::gaussian::{GaussianModel, SH_FLOATS};
use gs_core::soa::{zero_lane_block, LaneBlock, SoaParams, LANE_WIDTH};
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_render::parallel_for_each;

/// Adam hyper-parameters, with the per-attribute learning rates used by the
/// reference 3DGS implementation.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamConfig {
    /// Learning rate for positions.
    pub lr_position: f32,
    /// Learning rate for log-scales.
    pub lr_scale: f32,
    /// Learning rate for rotations.
    pub lr_rotation: f32,
    /// Learning rate for SH coefficients.
    pub lr_sh: f32,
    /// Learning rate for opacity logits.
    pub lr_opacity: f32,
    /// First-moment decay rate.
    pub beta1: f32,
    /// Second-moment decay rate.
    pub beta2: f32,
    /// Numerical-stability constant.
    pub eps: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr_position: 1.6e-4,
            lr_scale: 5.0e-3,
            lr_rotation: 1.0e-3,
            lr_sh: 2.5e-3,
            lr_opacity: 5.0e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1.0e-15,
        }
    }
}

impl AdamConfig {
    /// A configuration with a single learning rate for every attribute,
    /// convenient for unit tests and toy problems.
    pub fn uniform(lr: f32) -> Self {
        AdamConfig {
            lr_position: lr,
            lr_scale: lr,
            lr_rotation: lr,
            lr_sh: lr,
            lr_opacity: lr,
            ..Default::default()
        }
    }

    /// Learning rate of flat parameter `k` in the
    /// [`param_row`](GaussianModel::param_row) layout.
    #[inline]
    fn lr_of(&self, k: usize) -> f32 {
        match k {
            0..=2 => self.lr_position,
            3..=5 => self.lr_scale,
            6..=9 => self.lr_rotation,
            k if k < 10 + SH_FLOATS => self.lr_sh,
            _ => self.lr_opacity,
        }
    }

    /// The per-parameter learning rates as one flat table in
    /// [`param_row`](GaussianModel::param_row) layout — the form the lane
    /// kernel consumes (a plain indexed load instead of a branch per
    /// element).
    pub fn lr_table(&self) -> [f32; PARAMS_PER_GAUSSIAN] {
        let mut table = [0.0f32; PARAMS_PER_GAUSSIAN];
        for (k, lr) in table.iter_mut().enumerate() {
            *lr = self.lr_of(k);
        }
        table
    }
}

/// One Gaussian's exported Adam state — the checkpointable view of a moment
/// row.  Flat [`param_row`](GaussianModel::param_row) layout, so export →
/// restore is a pure copy and restored optimisers continue bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct AdamRowState {
    /// First-moment row, in [`param_row`](GaussianModel::param_row) layout.
    pub m: [f32; PARAMS_PER_GAUSSIAN],
    /// Second-moment row.
    pub v: [f32; PARAMS_PER_GAUSSIAN],
    /// Per-Gaussian step counter.
    pub step: u64,
}

/// One Gaussian's worth of Adam work, fully self-contained so it can be
/// computed on any thread: the parameter row, its gradient, the moment
/// estimates and the step counter (already incremented for this update).
///
/// Produced by [`GaussianAdam::pack_subset`], transformed in place by
/// [`compute_packed`] / [`compute_packed_chunked`], and merged back by
/// [`GaussianAdam::apply_packed`].
#[derive(Debug, Clone)]
pub struct AdamWorkItem {
    /// Index of the Gaussian this row belongs to.
    pub index: u32,
    /// Step count of this update (1-based, already incremented).
    pub step: u64,
    /// Parameter row (updated in place by the compute pass).
    pub params: [f32; PARAMS_PER_GAUSSIAN],
    /// Accumulated gradient row.
    pub grad: [f32; PARAMS_PER_GAUSSIAN],
    /// First-moment row (updated in place).
    pub m: [f32; PARAMS_PER_GAUSSIAN],
    /// Second-moment row (updated in place).
    pub v: [f32; PARAMS_PER_GAUSSIAN],
}

impl AdamWorkItem {
    /// An all-zero work item at step 1 — the padding-lane value: every Adam
    /// expression over it yields exactly zero (step 1 keeps the bias
    /// corrections non-zero), so padded lanes can run through the full
    /// kernel without affecting anything.
    fn zeroed() -> Self {
        AdamWorkItem {
            index: 0,
            step: 1,
            params: [0.0; PARAMS_PER_GAUSSIAN],
            grad: [0.0; PARAMS_PER_GAUSSIAN],
            m: [0.0; PARAMS_PER_GAUSSIAN],
            v: [0.0; PARAMS_PER_GAUSSIAN],
        }
    }
}

/// The Adam update of one lane group: `L` Gaussians, parameter-major.
/// **Every** optimiser path in this crate runs exactly this function, which
/// is what makes the sequential, packed and chunked drivers bit-identical.
///
/// The per-element math is the textbook Kingma & Ba update with
/// per-attribute learning rates (`lr`, indexed in
/// [`param_row`](GaussianModel::param_row) layout) and a **per-lane** step
/// counter (Gaussians age independently under sparse updates, so each lane
/// carries its own bias correction).  The inner loop walks `L` consecutive
/// floats of one parameter — a fixed-width block the autovectoriser lowers
/// to SIMD mul/div/sqrt; swapping it for `std::simd` later is mechanical.
///
/// Padding lanes must be staged as zeros **with step ≥ 1** (the private
/// `AdamWorkItem::zeroed` value); a zero lane stays exactly zero.
#[inline]
pub fn adam_update_lanes<const L: usize>(
    lr: &[f32; PARAMS_PER_GAUSSIAN],
    beta1: f32,
    beta2: f32,
    eps: f32,
    steps: &[u64; L],
    params: &mut [[f32; L]; PARAMS_PER_GAUSSIAN],
    grads: &[[f32; L]; PARAMS_PER_GAUSSIAN],
    m: &mut [[f32; L]; PARAMS_PER_GAUSSIAN],
    v: &mut [[f32; L]; PARAMS_PER_GAUSSIAN],
) {
    // Bias corrections are per lane (powf stays a scalar libm call), hoisted
    // out of the parameter loop so the hot inner loop is pure mul/div/sqrt.
    let mut bias1 = [0.0f32; L];
    let mut bias2 = [0.0f32; L];
    for l in 0..L {
        let t = steps[l] as f32;
        bias1[l] = 1.0 - beta1.powf(t);
        bias2[l] = 1.0 - beta2.powf(t);
    }
    for k in 0..PARAMS_PER_GAUSSIAN {
        let lr_k = lr[k];
        let (pk, gk) = (&mut params[k], &grads[k]);
        let (mk, vk) = (&mut m[k], &mut v[k]);
        for l in 0..L {
            let g = gk[l];
            mk[l] = beta1 * mk[l] + (1.0 - beta1) * g;
            vk[l] = beta2 * vk[l] + (1.0 - beta2) * g * g;
            let m_hat = mk[l] / bias1[l];
            let v_hat = vk[l] / bias2[l];
            pk[l] -= lr_k * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

/// Runs the lane kernel over packed work items in groups of `L`
/// (single-threaded), staging each group through a parameter-major block.
/// Exposed with a const lane count so tests can sweep `L ∈ {1, 2, 4, 8}`
/// against the scalar reference; production paths use
/// [`compute_packed`] (`L =` [`LANE_WIDTH`]).
pub fn compute_packed_lanes<const L: usize>(config: &AdamConfig, items: &mut [AdamWorkItem]) {
    let lr = config.lr_table();
    let pad = AdamWorkItem::zeroed();
    let mut steps = [1u64; L];
    let mut p = [[0.0f32; L]; PARAMS_PER_GAUSSIAN];
    let mut g = [[0.0f32; L]; PARAMS_PER_GAUSSIAN];
    let mut m = [[0.0f32; L]; PARAMS_PER_GAUSSIAN];
    let mut v = [[0.0f32; L]; PARAMS_PER_GAUSSIAN];
    for group in items.chunks_mut(L) {
        for l in 0..L {
            let item = group.get(l).unwrap_or(&pad);
            steps[l] = item.step;
            for k in 0..PARAMS_PER_GAUSSIAN {
                p[k][l] = item.params[k];
                g[k][l] = item.grad[k];
                m[k][l] = item.m[k];
                v[k][l] = item.v[k];
            }
        }
        adam_update_lanes(
            &lr,
            config.beta1,
            config.beta2,
            config.eps,
            &steps,
            &mut p,
            &g,
            &mut m,
            &mut v,
        );
        for (l, item) in group.iter_mut().enumerate() {
            for k in 0..PARAMS_PER_GAUSSIAN {
                item.params[k] = p[k][l];
                item.m[k] = m[k][l];
                item.v[k] = v[k][l];
            }
        }
    }
}

/// Runs the Adam kernel over every packed work item (single-threaded).
pub fn compute_packed(config: &AdamConfig, items: &mut [AdamWorkItem]) {
    compute_packed_lanes::<LANE_WIDTH>(config, items);
}

/// Runs the Adam kernel over the packed work items split across up to
/// `threads` workers of the persistent compute pool.  Each item is
/// independent, so the result is bit-identical to [`compute_packed`]
/// regardless of the thread count or chunk boundaries.
pub fn compute_packed_chunked(config: &AdamConfig, items: &mut [AdamWorkItem], threads: usize) {
    let threads = threads.max(1).min(items.len().max(1));
    if threads <= 1 {
        compute_packed(config, items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let slices: Vec<&mut [AdamWorkItem]> = items.chunks_mut(chunk).collect();
    parallel_for_each(threads, slices, |slice| compute_packed(config, slice));
}

/// Bytes one packed [`AdamWorkItem`] occupies — the unit the autotuner's
/// cache-aware chunk sizing reasons in.
pub const WORK_ITEM_BYTES: usize = std::mem::size_of::<AdamWorkItem>();

/// The worker count that keeps each [`compute_packed_chunked`] chunk at or
/// under `target_chunk_rows` work items without exceeding `max_threads`:
/// small workloads stay on few threads (one cache-resident chunk does not
/// benefit from being split), large workloads fan out until either every
/// chunk fits the target or the thread budget is exhausted.
///
/// Pure scheduling — [`compute_packed_chunked`] is bit-identical for every
/// thread count, so callers may resize freely per batch.
pub fn threads_for_chunk_rows(len: usize, target_chunk_rows: usize, max_threads: usize) -> usize {
    let target = target_chunk_rows.max(1);
    len.div_ceil(target).clamp(1, max_threads.max(1))
}

/// Writes a [`GradientBuffer`] row into a flat
/// [`param_row`](GaussianModel::param_row)-layout buffer.
fn flat_grad_into(grads: &GradientBuffer, index: u32, row: &mut [f32; PARAMS_PER_GAUSSIAN]) {
    let g = grads.row(index);
    row[0..3].copy_from_slice(&g.d_position.to_array());
    row[3..6].copy_from_slice(&g.d_log_scale.to_array());
    row[6..10].copy_from_slice(&g.d_rotation);
    row[10..10 + SH_FLOATS].copy_from_slice(&g.d_sh);
    row[PARAMS_PER_GAUSSIAN - 1] = g.d_opacity_logit;
}

/// Stages a [`GradientBuffer`] row into lane `lane` of a parameter-major
/// block — the transposed twin of [`flat_grad_into`], same values.
fn stage_grad_lane(grads: &GradientBuffer, index: u32, lane: usize, block: &mut LaneBlock) {
    let g = grads.row(index);
    let dp = g.d_position.to_array();
    let ds = g.d_log_scale.to_array();
    for k in 0..3 {
        block[k][lane] = dp[k];
        block[3 + k][lane] = ds[k];
    }
    for k in 0..4 {
        block[6 + k][lane] = g.d_rotation[k];
    }
    for k in 0..SH_FLOATS {
        block[10 + k][lane] = g.d_sh[k];
    }
    block[PARAMS_PER_GAUSSIAN - 1][lane] = g.d_opacity_logit;
}

/// Adam optimiser whose state is shaped like a [`GaussianModel`], held in
/// lane-chunked [`SoaParams`] stores so the kernel streams it SIMD-wise.
///
/// The state grows lazily: Gaussians created by densification get fresh
/// moments the first time they are updated.
#[derive(Debug, Clone)]
pub struct GaussianAdam {
    config: AdamConfig,
    m: SoaParams,
    v: SoaParams,
    steps: Vec<u64>,
}

impl GaussianAdam {
    /// Creates an optimiser for a model that currently has `len` Gaussians.
    pub fn new(len: usize, config: AdamConfig) -> Self {
        GaussianAdam {
            config,
            m: SoaParams::zeros(len),
            v: SoaParams::zeros(len),
            steps: vec![0; len],
        }
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Number of Gaussians with optimiser state.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the optimiser holds no state.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Bytes of optimiser state (two moments per parameter), matching the
    /// paper's accounting.
    pub fn state_bytes(&self) -> usize {
        self.steps.len() * PARAMS_PER_GAUSSIAN * 2 * 4
    }

    /// Ensures state exists for `len` Gaussians (used after densification).
    pub fn resize(&mut self, len: usize) {
        self.m.resize(len);
        self.v.resize(len);
        self.steps.resize(len, 0);
    }

    /// Resizes the optimiser state for a densification boundary, following
    /// the paper's heuristic: pruned rows are dropped, surviving rows keep
    /// their moments and step counts (a clone/split continues the original's
    /// trajectory), and the appended rows start from fresh zero moments —
    /// exactly the state a lazily-grown optimiser would give them.
    ///
    /// `pruned` must be sorted pre-resize indices; `new_len` is the model
    /// size after the resize.
    ///
    /// # Panics
    /// Panics if a pruned index is out of bounds of the current state.
    pub fn apply_resize(&mut self, pruned: &[u32], new_len: usize) {
        if !pruned.is_empty() {
            let mut remove = vec![false; self.steps.len()];
            for &i in pruned {
                let i = i as usize;
                assert!(i < remove.len(), "pruned index {i} out of bounds");
                remove[i] = true;
            }
            let mut flags = remove.iter();
            self.steps.retain(|_| !*flags.next().unwrap());
            self.m.apply_resize(pruned, self.steps.len());
            self.v.apply_resize(pruned, self.steps.len());
        }
        self.resize(new_len);
    }

    /// Applies one Adam step to **every** Gaussian using the gradients in
    /// `grads` (Gaussians without gradients receive a zero gradient, which
    /// still decays their moments — this matches dense GPU Adam).
    pub fn step_dense(&mut self, model: &mut GaussianModel, grads: &GradientBuffer) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        let indices: Vec<u32> = (0..model.len() as u32).collect();
        self.step_indices(model, grads, &indices);
    }

    /// Applies one Adam step only to the Gaussians in `indices`
    /// (the sparse "CPU Adam" path, §5.4).  Other Gaussians are untouched.
    ///
    /// # Panics
    /// Panics if an index is out of bounds or the gradient buffer does not
    /// match the model size.
    pub fn step_subset(
        &mut self,
        model: &mut GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
    ) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        self.resize(model.len());
        self.step_indices(model, grads, indices);
    }

    /// Like [`step_subset`](Self::step_subset) but running the per-row
    /// kernels across up to `threads` pool worker threads (the
    /// parallel-chunk CPU Adam path).  Bit-identical to the sequential step
    /// for any thread count, since every row is independent.
    pub fn step_subset_parallel(
        &mut self,
        model: &mut GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
        threads: usize,
    ) {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        let mut items = self.pack_subset(model, grads, indices);
        compute_packed_chunked(&self.config, &mut items, threads);
        self.apply_packed(model, &items);
    }

    /// The in-place driver: stages `indices` (in order, groups of
    /// [`LANE_WIDTH`]) into parameter-major lane blocks, runs the shared
    /// lane kernel, and scatters the **active** lanes back.  Padding lanes
    /// stay zero through the kernel and are never written anywhere.
    fn step_indices(&mut self, model: &mut GaussianModel, grads: &GradientBuffer, indices: &[u32]) {
        let lr = self.config.lr_table();
        let mut steps = [1u64; LANE_WIDTH];
        let mut p = zero_lane_block();
        let mut g = zero_lane_block();
        let mut m = zero_lane_block();
        let mut v = zero_lane_block();
        for group in indices.chunks(LANE_WIDTH) {
            for l in 0..LANE_WIDTH {
                match group.get(l) {
                    Some(&idx) => {
                        let i = idx as usize;
                        assert!(i < model.len(), "gaussian index {i} out of bounds");
                        self.steps[i] += 1;
                        steps[l] = self.steps[i];
                        model.param_lane_into(i, l, &mut p);
                        stage_grad_lane(grads, idx, l, &mut g);
                        self.m.gather_lane(i, l, &mut m);
                        self.v.gather_lane(i, l, &mut v);
                    }
                    None => {
                        // Re-zero lanes left over from the previous group.
                        steps[l] = 1;
                        for k in 0..PARAMS_PER_GAUSSIAN {
                            p[k][l] = 0.0;
                            g[k][l] = 0.0;
                            m[k][l] = 0.0;
                            v[k][l] = 0.0;
                        }
                    }
                }
            }
            adam_update_lanes(
                &lr,
                self.config.beta1,
                self.config.beta2,
                self.config.eps,
                &steps,
                &mut p,
                &g,
                &mut m,
                &mut v,
            );
            for (l, &idx) in group.iter().enumerate() {
                let i = idx as usize;
                model.set_param_lane(i, l, &p);
                self.m.scatter_lane(i, l, &m);
                self.v.scatter_lane(i, l, &v);
            }
        }
    }

    /// Packs the Adam work of `indices` into self-contained
    /// [`AdamWorkItem`]s without touching the model or the optimiser state —
    /// each field is staged **directly** into the item (model row, gradient
    /// row, lane-chunked moments), with no intermediate row
    /// materialisation.  Gaussians beyond the current state length get
    /// fresh (zero) moments, exactly as the in-place path would create them.
    ///
    /// # Panics
    /// Panics if an index is out of bounds of the model or the gradient
    /// buffer does not match the model size.
    pub fn pack_subset(
        &self,
        model: &GaussianModel,
        grads: &GradientBuffer,
        indices: &[u32],
    ) -> Vec<AdamWorkItem> {
        assert_eq!(model.len(), grads.len(), "gradient buffer size mismatch");
        indices
            .iter()
            .map(|&idx| {
                let i = idx as usize;
                assert!(i < model.len(), "gaussian index {i} out of bounds");
                let mut item = AdamWorkItem {
                    index: idx,
                    step: 1,
                    params: [0.0; PARAMS_PER_GAUSSIAN],
                    grad: [0.0; PARAMS_PER_GAUSSIAN],
                    m: [0.0; PARAMS_PER_GAUSSIAN],
                    v: [0.0; PARAMS_PER_GAUSSIAN],
                };
                model.read_param_row_into(i, &mut item.params);
                flat_grad_into(grads, idx, &mut item.grad);
                if i < self.steps.len() {
                    item.step = self.steps[i] + 1;
                    self.m.read_row_into(i, &mut item.m);
                    self.v.read_row_into(i, &mut item.v);
                }
                item
            })
            .collect()
    }

    /// Merges computed work items back into the model and the optimiser
    /// state (pure copies — all math happened in the compute pass).
    ///
    /// # Panics
    /// Panics if an item's index is out of bounds of the model.
    pub fn apply_packed(&mut self, model: &mut GaussianModel, items: &[AdamWorkItem]) {
        self.resize(model.len());
        for item in items {
            let i = item.index as usize;
            assert!(i < model.len(), "gaussian index {i} out of bounds");
            model.set_param_row(i, &item.params);
            self.m.set_row(i, &item.m);
            self.v.set_row(i, &item.v);
            self.steps[i] = item.step;
        }
    }

    /// Number of Adam steps Gaussian `index` has received so far.
    pub fn step_count(&self, index: u32) -> u64 {
        self.steps.get(index as usize).copied().unwrap_or(0)
    }

    /// Exports every moment row for checkpointing (pure copies through the
    /// row-layout seam).
    pub fn export_rows(&self) -> Vec<AdamRowState> {
        (0..self.steps.len())
            .map(|i| AdamRowState {
                m: self.m.row(i),
                v: self.v.row(i),
                step: self.steps[i],
            })
            .collect()
    }

    /// Rebuilds an optimiser from exported rows; the inverse of
    /// [`export_rows`](Self::export_rows).
    pub fn from_rows(config: AdamConfig, rows: Vec<AdamRowState>) -> Self {
        let mut adam = GaussianAdam::new(rows.len(), config);
        for (i, r) in rows.into_iter().enumerate() {
            adam.m.set_row(i, &r.m);
            adam.v.set_row(i, &r.v);
            adam.steps[i] = r.step;
        }
        adam
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::gaussian::Gaussian;
    use gs_core::math::Vec3;
    use gs_render::GaussianGradients;

    fn model_of(n: usize) -> GaussianModel {
        (0..n)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 5.0), 0.3, [0.5; 3], 0.7))
            .collect()
    }

    fn grad_with_position(d: Vec3) -> GaussianGradients {
        GaussianGradients {
            d_position: d,
            ..Default::default()
        }
    }

    /// Reference scalar Adam, transcribed directly from the paper's cited
    /// Adam formulation (Kingma & Ba).
    fn reference_adam(param0: f32, grads: &[f32], lr: f32) -> f32 {
        let (beta1, beta2, eps) = (0.9f32, 0.999f32, 1.0e-15f32);
        let (mut m, mut v, mut p) = (0.0f32, 0.0f32, param0);
        for (t, &g) in grads.iter().enumerate() {
            let t = (t + 1) as f32;
            m = beta1 * m + (1.0 - beta1) * g;
            v = beta2 * v + (1.0 - beta2) * g * g;
            let m_hat = m / (1.0 - beta1.powf(t));
            let v_hat = v / (1.0 - beta2.powf(t));
            p -= lr * m_hat / (v_hat.sqrt() + eps);
        }
        p
    }

    /// A richly-varied gradient buffer touching every attribute group.
    fn varied_grads(n: usize) -> GradientBuffer {
        let mut buf = GradientBuffer::new(n);
        for i in 0..n {
            let f = i as f32 + 1.0;
            let mut d_sh = [0.0f32; SH_FLOATS];
            for (k, c) in d_sh.iter_mut().enumerate() {
                *c = 0.01 * f * (k as f32 - 20.0);
            }
            buf.add(
                i as u32,
                &GaussianGradients {
                    d_position: Vec3::new(0.3 * f, -0.1, 0.2 * f),
                    d_log_scale: Vec3::new(-0.05, 0.02 * f, 0.0),
                    d_rotation: [0.01 * f, -0.02, 0.03, 0.04 * f],
                    d_sh,
                    d_opacity_logit: 0.5 - 0.1 * f,
                },
            );
        }
        buf
    }

    #[test]
    fn dense_step_matches_reference_adam() {
        let mut model = model_of(1);
        let p0 = model.positions()[0].x;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.01));
        let grad_sequence = [0.5f32, -0.2, 0.8, 0.1];
        for &g in &grad_sequence {
            let mut buf = GradientBuffer::new(1);
            buf.add(0, &grad_with_position(Vec3::new(g, 0.0, 0.0)));
            opt.step_dense(&mut model, &buf);
        }
        let expected = reference_adam(p0, &grad_sequence, 0.01);
        let actual = model.positions()[0].x;
        assert!((actual - expected).abs() < 1e-6, "{actual} vs {expected}");
        assert_eq!(opt.step_count(0), 4);
    }

    #[test]
    fn subset_step_only_touches_listed_gaussians() {
        let mut model = model_of(3);
        let before = model.clone();
        let mut opt = GaussianAdam::new(3, AdamConfig::default());
        let mut buf = GradientBuffer::new(3);
        for i in 0..3 {
            buf.add(i, &grad_with_position(Vec3::new(1.0, 1.0, 1.0)));
        }
        opt.step_subset(&mut model, &buf, &[1]);
        assert_eq!(model.positions()[0], before.positions()[0]);
        assert_ne!(model.positions()[1], before.positions()[1]);
        assert_eq!(model.positions()[2], before.positions()[2]);
        assert_eq!(opt.step_count(0), 0);
        assert_eq!(opt.step_count(1), 1);
    }

    #[test]
    fn disjoint_subset_steps_equal_one_dense_step() {
        // Updating {0,1} and then {2,3} with the same gradient buffer must
        // give exactly the same result as one dense step over all four —
        // this is the invariant overlapped CPU Adam relies on (§4.2.2).
        // With lane grouping this also exercises partial lane blocks.
        let grads = varied_grads(4);

        let mut model_a = model_of(4);
        let mut opt_a = GaussianAdam::new(4, AdamConfig::default());
        opt_a.step_subset(&mut model_a, &grads, &[0, 1]);
        opt_a.step_subset(&mut model_a, &grads, &[2, 3]);

        let mut model_b = model_of(4);
        let mut opt_b = GaussianAdam::new(4, AdamConfig::default());
        opt_b.step_dense(&mut model_b, &grads);

        assert_eq!(model_a, model_b);
    }

    #[test]
    fn packed_path_is_bit_identical_to_in_place_step() {
        // The shippable pack → compute → apply path must be exactly the
        // sequential step: same parameters, same moments, same step counts.
        let grads = varied_grads(6);
        let indices = [0u32, 2, 3, 5];

        let mut model_seq = model_of(6);
        let mut opt_seq = GaussianAdam::new(6, AdamConfig::default());
        // Pre-age two rows so packed steps start from non-zero moments.
        opt_seq.step_subset(&mut model_seq, &grads, &[2, 5]);

        let mut model_packed = model_seq.clone();
        let mut opt_packed = opt_seq.clone();

        opt_seq.step_subset(&mut model_seq, &grads, &indices);

        let mut items = opt_packed.pack_subset(&model_packed, &grads, &indices);
        compute_packed(opt_packed.config(), &mut items);
        opt_packed.apply_packed(&mut model_packed, &items);

        assert_eq!(model_seq, model_packed);
        for idx in indices {
            assert_eq!(opt_seq.step_count(idx), opt_packed.step_count(idx));
        }
        // One more sequential step on both keeps them in lockstep (moments
        // were merged back exactly).
        opt_seq.step_subset(&mut model_seq, &grads, &indices);
        opt_packed.step_subset(&mut model_packed, &grads, &indices);
        assert_eq!(model_seq, model_packed);
    }

    #[test]
    fn chunked_compute_is_identical_for_any_thread_count() {
        let grads = varied_grads(17);
        let indices: Vec<u32> = (0..17).collect();
        let reference = {
            let mut model = model_of(17);
            let mut opt = GaussianAdam::new(17, AdamConfig::default());
            opt.step_subset(&mut model, &grads, &indices);
            model
        };
        for threads in [1usize, 2, 3, 8, 64] {
            let mut model = model_of(17);
            let mut opt = GaussianAdam::new(17, AdamConfig::default());
            opt.step_subset_parallel(&mut model, &grads, &indices, threads);
            assert_eq!(model, reference, "threads = {threads}");
        }
    }

    #[test]
    fn chunk_row_targets_map_to_sane_thread_counts() {
        // One cache-resident chunk never fans out…
        assert_eq!(threads_for_chunk_rows(1_000, 4_096, 16), 1);
        // …a big workload fans out until chunks fit the target…
        assert_eq!(threads_for_chunk_rows(100_000, 4_096, 64), 25);
        // …but never past the thread budget.
        assert_eq!(threads_for_chunk_rows(100_000, 4_096, 16), 16);
        // Degenerate inputs stay in range.
        assert_eq!(threads_for_chunk_rows(0, 4_096, 16), 1);
        assert_eq!(threads_for_chunk_rows(100, 0, 16), 16);
        assert_eq!(threads_for_chunk_rows(100, 10, 0), 1);
        // The work-item size the targets are computed from is stable-ish:
        // 59 params x 4 arrays of f32 plus the index/step header.
        const { assert!(WORK_ITEM_BYTES >= 4 * 4 * 59) };
    }

    #[test]
    fn pack_subset_handles_unsized_state_like_resize_would() {
        // Packing rows past the optimiser's current length must behave like
        // the in-place path (which resizes first): fresh zero moments.
        let grads = varied_grads(4);
        let mut model_a = model_of(4);
        let mut opt_a = GaussianAdam::new(2, AdamConfig::default());
        let mut items = opt_a.pack_subset(&model_a, &grads, &[1, 3]);
        compute_packed(opt_a.config(), &mut items);
        opt_a.apply_packed(&mut model_a, &items);

        let mut model_b = model_of(4);
        let mut opt_b = GaussianAdam::new(2, AdamConfig::default());
        opt_b.step_subset(&mut model_b, &grads, &[1, 3]);

        assert_eq!(model_a, model_b);
        assert_eq!(opt_a.step_count(3), 1);
    }

    #[test]
    fn adam_descends_a_simple_quadratic() {
        // Minimise (x - 2)^2 via its gradient 2(x - 2) on the opacity logit.
        let mut model = model_of(1);
        model.opacity_logits_mut()[0] = -3.0;
        let mut opt = GaussianAdam::new(1, AdamConfig::uniform(0.05));
        for _ in 0..800 {
            let x = model.opacity_logits()[0];
            let mut buf = GradientBuffer::new(1);
            buf.add(
                0,
                &GaussianGradients {
                    d_opacity_logit: 2.0 * (x - 2.0),
                    ..Default::default()
                },
            );
            opt.step_dense(&mut model, &buf);
        }
        assert!(
            (model.opacity_logits()[0] - 2.0).abs() < 0.05,
            "converged to {}",
            model.opacity_logits()[0]
        );
    }

    #[test]
    fn apply_resize_compacts_pruned_rows_and_zeroes_new_ones() {
        // Age rows 0..4 by distinct step counts so compaction is observable.
        let mut model = model_of(4);
        let mut opt = GaussianAdam::new(4, AdamConfig::default());
        let grads = varied_grads(4);
        opt.step_dense(&mut model, &grads);
        opt.step_subset(&mut model, &grads, &[2, 3]);
        opt.step_subset(&mut model, &grads, &[3]);
        assert_eq!(
            (0..4).map(|i| opt.step_count(i)).collect::<Vec<_>>(),
            vec![1, 1, 2, 3]
        );

        // Prune rows 0 and 2, then grow to 5: survivors {1, 3} slide to
        // rows {0, 1} with their step counts intact; rows 2..5 are fresh.
        opt.apply_resize(&[0, 2], 5);
        assert_eq!(opt.len(), 5);
        assert_eq!(opt.step_count(0), 1, "old row 1 kept its state");
        assert_eq!(opt.step_count(1), 3, "old row 3 kept its state");
        for i in 2..5 {
            assert_eq!(opt.step_count(i), 0, "appended row {i} starts fresh");
        }
    }

    #[test]
    fn apply_resize_survivors_step_like_never_resized() {
        // A survivor's moments must be byte-identical to an optimiser that
        // never went through a resize: further steps on both must agree.
        let grads = varied_grads(3);
        let mut model_resized = model_of(3);
        let mut opt_resized = GaussianAdam::new(3, AdamConfig::default());
        opt_resized.step_dense(&mut model_resized, &grads);

        // A parallel world that only ever held row 1, fed the same gradient.
        let mut model_plain: GaussianModel = std::iter::once(model_of(3).get(1)).collect();
        let mut opt_plain = GaussianAdam::new(1, AdamConfig::default());
        let mut buf = GradientBuffer::new(1);
        buf.add(0, &grads.row(1));
        opt_plain.step_dense(&mut model_plain, &buf);

        // Prune rows 0 and 2; the survivor slides to row 0.
        opt_resized.apply_resize(&[0, 2], 1);
        let mut model_after: GaussianModel = std::iter::once(model_resized.get(1)).collect();
        assert_eq!(model_after, model_plain);
        opt_resized.step_dense(&mut model_after, &buf);
        opt_plain.step_dense(&mut model_plain, &buf);
        assert_eq!(model_after, model_plain, "survivor state must not drift");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn apply_resize_rejects_out_of_range_prunes() {
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        opt.apply_resize(&[7], 2);
    }

    #[test]
    fn resize_preserves_existing_state() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let mut buf = GradientBuffer::new(2);
        buf.add(0, &grad_with_position(Vec3::X));
        opt.step_dense(&mut model, &buf);
        assert_eq!(opt.step_count(0), 1);
        opt.resize(5);
        assert_eq!(opt.len(), 5);
        assert_eq!(opt.step_count(0), 1, "existing state preserved");
        assert_eq!(opt.step_count(4), 0);
    }

    #[test]
    fn state_bytes_accounting() {
        let opt = GaussianAdam::new(100, AdamConfig::default());
        // Two moments per parameter: 59 * 2 * 4 bytes per Gaussian.
        assert_eq!(opt.state_bytes(), 100 * 472);
    }

    #[test]
    fn export_rows_round_trips_through_from_rows() {
        let grads = varied_grads(11);
        let mut model = model_of(11);
        let mut opt = GaussianAdam::new(11, AdamConfig::default());
        opt.step_dense(&mut model, &grads);
        opt.step_subset(&mut model, &grads, &[3, 7, 9]);

        let restored = GaussianAdam::from_rows(opt.config().clone(), opt.export_rows());
        assert_eq!(restored.len(), opt.len());
        // Restored state must continue bit-identically.
        let mut model_restored = model.clone();
        let mut opt_restored = restored;
        opt.step_dense(&mut model, &grads);
        opt_restored.step_dense(&mut model_restored, &grads);
        assert_eq!(model, model_restored);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_subset_panics() {
        let mut model = model_of(2);
        let mut opt = GaussianAdam::new(2, AdamConfig::default());
        let buf = GradientBuffer::new(2);
        opt.step_subset(&mut model, &buf, &[5]);
    }
}
