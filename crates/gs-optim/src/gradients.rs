//! Gradient accumulation buffers.
//!
//! CLM processes a batch as a sequence of single-image micro-batches and
//! accumulates their gradients before the optimiser step (§4.2).  The
//! [`GradientBuffer`] is the CPU-side accumulator: dense storage shaped like
//! the model plus a record of which Gaussians were actually touched, so that
//! sparse (subset) Adam and the finalisation analysis of overlapped CPU Adam
//! can work directly from it.

use gs_core::gaussian::{GaussianModel, SH_FLOATS};
use gs_core::math::Vec3;
use gs_core::visibility::VisibilitySet;
use gs_render::{GaussianGradients, RenderGradients};

/// Dense per-Gaussian gradient accumulator.
#[derive(Debug, Clone)]
pub struct GradientBuffer {
    d_positions: Vec<Vec3>,
    d_log_scales: Vec<Vec3>,
    d_rotations: Vec<[f32; 4]>,
    d_sh: Vec<f32>,
    d_opacity_logits: Vec<f32>,
    touched: Vec<bool>,
}

impl GradientBuffer {
    /// Creates a zeroed buffer for `len` Gaussians.
    pub fn new(len: usize) -> Self {
        GradientBuffer {
            d_positions: vec![Vec3::ZERO; len],
            d_log_scales: vec![Vec3::ZERO; len],
            d_rotations: vec![[0.0; 4]; len],
            d_sh: vec![0.0; len * SH_FLOATS],
            d_opacity_logits: vec![0.0; len],
            touched: vec![false; len],
        }
    }

    /// Creates a buffer sized for `model`.
    pub fn for_model(model: &GaussianModel) -> Self {
        Self::new(model.len())
    }

    /// Number of Gaussians the buffer covers.
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Whether the buffer covers zero Gaussians.
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Accumulates `grad` into Gaussian `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn add(&mut self, index: u32, grad: &GaussianGradients) {
        let i = index as usize;
        assert!(
            i < self.len(),
            "gaussian index {i} out of bounds for buffer of length {}",
            self.len()
        );
        self.d_positions[i] += grad.d_position;
        self.d_log_scales[i] += grad.d_log_scale;
        for k in 0..4 {
            self.d_rotations[i][k] += grad.d_rotation[k];
        }
        let off = i * SH_FLOATS;
        for k in 0..SH_FLOATS {
            self.d_sh[off + k] += grad.d_sh[k];
        }
        self.d_opacity_logits[i] += grad.d_opacity_logit;
        self.touched[i] = true;
    }

    /// Accumulates every entry of a renderer gradient result.
    pub fn accumulate_render(&mut self, grads: &RenderGradients) {
        for (index, grad) in grads.iter() {
            self.add(*index, grad);
        }
    }

    /// Reads the accumulated gradient of Gaussian `index`.
    ///
    /// # Panics
    /// Panics if `index` is out of bounds.
    pub fn row(&self, index: u32) -> GaussianGradients {
        let i = index as usize;
        assert!(i < self.len(), "gaussian index {i} out of bounds");
        let mut d_sh = [0.0f32; SH_FLOATS];
        d_sh.copy_from_slice(&self.d_sh[i * SH_FLOATS..(i + 1) * SH_FLOATS]);
        GaussianGradients {
            d_position: self.d_positions[i],
            d_log_scale: self.d_log_scales[i],
            d_rotation: self.d_rotations[i],
            d_sh,
            d_opacity_logit: self.d_opacity_logits[i],
        }
    }

    /// Whether Gaussian `index` has received any gradient.
    pub fn is_touched(&self, index: u32) -> bool {
        self.touched.get(index as usize).copied().unwrap_or(false)
    }

    /// The set of Gaussians that received gradients.
    pub fn touched_set(&self) -> VisibilitySet {
        VisibilitySet::from_sorted(
            self.touched
                .iter()
                .enumerate()
                .filter(|(_, &t)| t)
                .map(|(i, _)| i as u32)
                .collect(),
        )
    }

    /// Number of touched Gaussians.
    pub fn touched_count(&self) -> usize {
        self.touched.iter().filter(|&&t| t).count()
    }

    /// Resets every gradient to zero (keeps the allocation).
    pub fn clear(&mut self) {
        self.d_positions.fill(Vec3::ZERO);
        self.d_log_scales.fill(Vec3::ZERO);
        self.d_rotations.fill([0.0; 4]);
        self.d_sh.fill(0.0);
        self.d_opacity_logits.fill(0.0);
        self.touched.fill(false);
    }

    /// Resets only the Gaussians in `indices` (used after CLM finalises and
    /// applies their updates early).
    pub fn clear_indices(&mut self, indices: &[u32]) {
        for &idx in indices {
            let i = idx as usize;
            if i >= self.len() {
                continue;
            }
            self.d_positions[i] = Vec3::ZERO;
            self.d_log_scales[i] = Vec3::ZERO;
            self.d_rotations[i] = [0.0; 4];
            self.d_sh[i * SH_FLOATS..(i + 1) * SH_FLOATS].fill(0.0);
            self.d_opacity_logits[i] = 0.0;
            self.touched[i] = false;
        }
    }

    /// Sum of the L2 norms of every touched Gaussian's gradient (a cheap
    /// global magnitude measure used in tests and densification heuristics).
    pub fn total_norm(&self) -> f32 {
        (0..self.len() as u32)
            .filter(|&i| self.is_touched(i))
            .map(|i| self.row(i).norm().powi(2))
            .sum::<f32>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad(px: f32, opacity: f32) -> GaussianGradients {
        GaussianGradients {
            d_position: Vec3::new(px, 0.0, 0.0),
            d_opacity_logit: opacity,
            ..Default::default()
        }
    }

    #[test]
    fn add_accumulates_and_marks_touched() {
        let mut buf = GradientBuffer::new(3);
        assert_eq!(buf.touched_count(), 0);
        buf.add(1, &grad(1.0, 0.5));
        buf.add(1, &grad(2.0, -0.25));
        assert!(buf.is_touched(1));
        assert!(!buf.is_touched(0));
        let row = buf.row(1);
        assert_eq!(row.d_position.x, 3.0);
        assert_eq!(row.d_opacity_logit, 0.25);
        assert_eq!(buf.touched_set().indices(), &[1]);
    }

    #[test]
    fn accumulation_order_does_not_matter() {
        // The paper's §4.2.3 correctness argument: gradients accumulated over
        // a batch are identical regardless of micro-batch order.
        let grads = [
            (0u32, grad(0.3, 0.1)),
            (2, grad(-0.5, 0.2)),
            (0, grad(0.7, -0.4)),
        ];
        let mut forward = GradientBuffer::new(3);
        for (i, g) in &grads {
            forward.add(*i, g);
        }
        let mut reversed = GradientBuffer::new(3);
        for (i, g) in grads.iter().rev() {
            reversed.add(*i, g);
        }
        for i in 0..3 {
            assert_eq!(forward.row(i), reversed.row(i));
        }
    }

    #[test]
    fn clear_and_clear_indices() {
        let mut buf = GradientBuffer::new(4);
        for i in 0..4 {
            buf.add(i, &grad(1.0, 1.0));
        }
        buf.clear_indices(&[1, 3, 9]);
        assert!(buf.is_touched(0));
        assert!(!buf.is_touched(1));
        assert!(buf.is_touched(2));
        assert!(!buf.is_touched(3));
        assert_eq!(buf.row(1).d_position, Vec3::ZERO);
        buf.clear();
        assert_eq!(buf.touched_count(), 0);
        assert_eq!(buf.total_norm(), 0.0);
    }

    #[test]
    fn touched_set_is_sorted() {
        let mut buf = GradientBuffer::new(10);
        for i in [7u32, 2, 5] {
            buf.add(i, &grad(1.0, 0.0));
        }
        assert_eq!(buf.touched_set().indices(), &[2, 5, 7]);
        assert_eq!(buf.touched_count(), 3);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_out_of_bounds_panics() {
        let mut buf = GradientBuffer::new(2);
        buf.add(2, &grad(1.0, 0.0));
    }

    #[test]
    fn total_norm_of_known_gradients() {
        let mut buf = GradientBuffer::new(2);
        buf.add(0, &grad(3.0, 0.0));
        buf.add(1, &grad(0.0, 4.0));
        assert!((buf.total_norm() - 5.0).abs() < 1e-6);
    }
}
