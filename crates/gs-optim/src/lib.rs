//! Optimisation primitives for 3DGS training.
//!
//! Provides the Adam optimiser in the two flavours the CLM system needs —
//! a dense step (the GPU-only baselines) and a per-subset step (the CPU
//! Adam thread that updates Gaussians as soon as their gradients are
//! finalised, §4.2.2/§5.4) — together with the [`GradientBuffer`] used to
//! accumulate micro-batch gradients over a batch.
//!
//! # Example
//!
//! ```
//! use gs_core::{Gaussian, GaussianModel};
//! use gs_core::math::Vec3;
//! use gs_optim::{AdamConfig, GaussianAdam, GradientBuffer};
//! use gs_render::GaussianGradients;
//!
//! let mut model: GaussianModel =
//!     std::iter::repeat_with(|| Gaussian::isotropic(Vec3::ZERO, 0.1, [0.5; 3], 0.5))
//!         .take(4)
//!         .collect();
//! let mut optim = GaussianAdam::new(model.len(), AdamConfig::default());
//! let mut grads = GradientBuffer::for_model(&model);
//! grads.add(2, &GaussianGradients { d_opacity_logit: 0.5, ..Default::default() });
//! // Update only the touched Gaussian, exactly what CLM's CPU Adam does.
//! optim.step_subset(&mut model, &grads, grads.touched_set().indices());
//! assert_eq!(optim.step_count(2), 1);
//! assert_eq!(optim.step_count(0), 0);
//! ```

pub mod adam;
pub mod gradients;

pub use adam::{
    adam_update_lanes, compute_packed, compute_packed_chunked, compute_packed_lanes,
    threads_for_chunk_rows, AdamConfig, AdamRowState, AdamWorkItem, GaussianAdam, WORK_ITEM_BYTES,
};
pub use gradients::GradientBuffer;
