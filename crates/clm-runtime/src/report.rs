//! Per-iteration execution reports of the pipelined runtime.
//!
//! Each [`IterationReport`] pairs the numeric outcome of one training batch
//! (loss, traffic, order — identical to the synchronous trainer's
//! [`BatchReport`]) with the discrete-event schedule it executed on: the
//! makespan, per-lane busy/idle time and communication volume the paper's
//! Figures 11–15 and Table 7 are derived from.

use clm_core::BatchReport;
use sim_device::{Lane, OpKind, Timeline};

/// Busy/idle accounting of one lane over one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneReport {
    /// The lane.
    pub lane: Lane,
    /// Seconds the lane spent executing operations.
    pub busy: f64,
    /// Seconds the lane sat idle within the makespan.
    pub idle: f64,
    /// Busy fraction of the makespan (0–1).
    pub utilization: f64,
}

/// What one pipelined training iteration (batch) did, numerically and on
/// the event timeline.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// The numeric batch outcome (identical to the synchronous trainer's).
    pub batch: BatchReport,
    /// The executed schedule.
    pub timeline: Timeline,
    /// Number of views trained by the batch.
    pub views: usize,
    /// Prefetch lookahead window the engine chose for this batch (the
    /// configured window under `PrefetchPolicy::Fixed`, the measured-ratio
    /// choice under `PrefetchPolicy::Adaptive`).
    pub prefetch_window: usize,
}

impl IterationReport {
    /// Completion time of the iteration in simulated seconds.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Training throughput in images per simulated second.
    pub fn throughput(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            0.0
        } else {
            self.views as f64 / makespan
        }
    }

    /// Busy/idle accounting of one lane.
    pub fn lane(&self, lane: Lane) -> LaneReport {
        LaneReport {
            lane,
            busy: self.timeline.busy_time(lane),
            idle: self.timeline.idle_time(lane),
            utilization: self.timeline.utilization(lane),
        }
    }

    /// All four lanes in display order.
    pub fn lanes(&self) -> Vec<LaneReport> {
        Lane::ALL.iter().map(|&l| self.lane(l)).collect()
    }

    /// Fraction of the makespan the GPU compute lane sat idle — the paper's
    /// headline overlap metric (Figure 15).
    pub fn gpu_idle_fraction(&self) -> f64 {
        self.timeline.idle_fraction(Lane::GpuCompute)
    }

    /// CPU→GPU bytes moved on the costed timeline.
    pub fn comm_bytes_h2d(&self) -> u64 {
        self.timeline.bytes_by_kind(OpKind::LoadParams)
    }

    /// GPU→CPU bytes moved on the costed timeline.
    pub fn comm_bytes_d2h(&self) -> u64 {
        self.timeline.bytes_by_kind(OpKind::StoreGrads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> IterationReport {
        let mut t = Timeline::new();
        let load = t.push_with_bytes(OpKind::LoadParams, Lane::GpuComm, 1.0, 100, &[]);
        let fwd = t.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[load]);
        t.push_with_bytes(OpKind::StoreGrads, Lane::GpuComm, 1.0, 40, &[fwd]);
        IterationReport {
            batch: BatchReport {
                loss: 0.5,
                touched: 10,
                bytes_loaded: 100,
                bytes_stored: 40,
                order: vec![0, 1],
            },
            timeline: t,
            views: 2,
            prefetch_window: 1,
        }
    }

    #[test]
    fn throughput_and_lane_accounting() {
        let r = demo_report();
        assert_eq!(r.makespan(), 4.0);
        assert!((r.throughput() - 0.5).abs() < 1e-12);
        let compute = r.lane(Lane::GpuCompute);
        assert_eq!(compute.busy, 2.0);
        assert_eq!(compute.idle, 2.0);
        assert!((compute.utilization - 0.5).abs() < 1e-12);
        assert!((r.gpu_idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.comm_bytes_h2d(), 100);
        assert_eq!(r.comm_bytes_d2h(), 40);
        assert_eq!(r.lanes().len(), 4);
    }
}
