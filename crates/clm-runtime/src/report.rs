//! Per-iteration execution reports of the pipelined runtime.
//!
//! Each [`IterationReport`] pairs the numeric outcome of one training batch
//! (loss, traffic, order — identical to the synchronous trainer's
//! [`BatchReport`]) with the discrete-event schedule it executed on: the
//! makespan, per-lane busy/idle time and communication volume the paper's
//! Figures 11–15 and Table 7 are derived from.

use clm_core::{BatchReport, DensifyReport};
use sim_device::{FaultStats, Lane, OpKind, Timeline};

/// Busy/idle accounting of one lane over one iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneReport {
    /// The lane.
    pub lane: Lane,
    /// Seconds the lane spent executing operations.
    pub busy: f64,
    /// Seconds the lane sat idle within the makespan.
    pub idle: f64,
    /// Busy fraction of the makespan (0–1).
    pub utilization: f64,
}

/// What one pipelined training iteration (batch) did, numerically and on
/// the event timeline.
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// The numeric batch outcome (identical to the synchronous trainer's).
    pub batch: BatchReport,
    /// The executed schedule.
    pub timeline: Timeline,
    /// Number of views trained by the batch.
    pub views: usize,
    /// Prefetch lookahead window the engine chose for this batch (the
    /// configured window under `PrefetchPolicy::Fixed`, the measured-ratio
    /// choice under `PrefetchPolicy::Adaptive`).
    pub prefetch_window: usize,
    /// Banded-render worker count the batch ran with (resolved — never the
    /// `0` "inherit/autotune" sentinel).
    pub compute_threads: usize,
    /// Accumulation band height the batch rendered with (resolved, part of
    /// the numeric contract).
    pub band_height: u32,
    /// The densification resize applied at this batch's boundary, if one
    /// was due (`None` for the fixed-size batches in between).
    pub resize: Option<DensifyReport>,
    /// Faults injected (and recovered from) while executing this batch.
    /// All-zero when no fault plan is installed.
    pub faults: FaultStats,
}

impl IterationReport {
    /// Completion time of the iteration in simulated seconds.
    pub fn makespan(&self) -> f64 {
        self.timeline.makespan()
    }

    /// Training throughput in images per simulated second.
    pub fn throughput(&self) -> f64 {
        let makespan = self.makespan();
        if makespan <= 0.0 {
            0.0
        } else {
            self.views as f64 / makespan
        }
    }

    /// Busy/idle accounting of one lane.
    pub fn lane(&self, lane: Lane) -> LaneReport {
        LaneReport {
            lane,
            busy: self.timeline.busy_time(lane),
            idle: self.timeline.idle_time(lane),
            utilization: self.timeline.utilization(lane),
        }
    }

    /// The four **single-device** lanes in display order (device 0's
    /// compute/comm/Adam plus the shared scheduler).  A multi-device report
    /// from the sharded engine has further `Device*` lanes on its timeline —
    /// use [`device_lane_group`](Self::device_lane_group) /
    /// [`all_device_lanes`](Self::all_device_lanes) to read them; this
    /// method alone under-counts a sharded schedule.
    pub fn lanes(&self) -> Vec<LaneReport> {
        Lane::ALL.iter().map(|&l| self.lane(l)).collect()
    }

    /// Busy/idle accounting of one device's lane group (compute, comm, CPU
    /// Adam — in that order).  Device 0 maps to the classic GPU lanes.
    pub fn device_lane_group(&self, device: usize) -> [LaneReport; 3] {
        [
            self.lane(Lane::compute_of(device)),
            self.lane(Lane::comm_of(device)),
            self.lane(Lane::adam_of(device)),
        ]
    }

    /// Lane groups of every device in a sharded schedule, in device order.
    pub fn all_device_lanes(&self, num_devices: usize) -> Vec<[LaneReport; 3]> {
        (0..num_devices)
            .map(|d| self.device_lane_group(d))
            .collect()
    }

    /// Fraction of the makespan the GPU compute lane sat idle — the paper's
    /// headline overlap metric (Figure 15).  For a multi-device report this
    /// is **device 0's** compute lane; see
    /// [`device_idle_fraction`](Self::device_idle_fraction) for the others.
    pub fn gpu_idle_fraction(&self) -> f64 {
        self.timeline.idle_fraction(Lane::GpuCompute)
    }

    /// Fraction of the makespan `device`'s compute lane sat idle.
    pub fn device_idle_fraction(&self, device: usize) -> f64 {
        self.timeline.idle_fraction(Lane::compute_of(device))
    }

    /// CPU→GPU bytes moved on the costed timeline.
    pub fn comm_bytes_h2d(&self) -> u64 {
        self.timeline.bytes_by_kind(OpKind::LoadParams)
    }

    /// GPU→CPU bytes moved on the costed timeline.
    pub fn comm_bytes_d2h(&self) -> u64 {
        self.timeline.bytes_by_kind(OpKind::StoreGrads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> IterationReport {
        let mut t = Timeline::new();
        let load = t.push_with_bytes(OpKind::LoadParams, Lane::GpuComm, 1.0, 100, &[]);
        let fwd = t.push(OpKind::Forward, Lane::GpuCompute, 2.0, &[load]);
        t.push_with_bytes(OpKind::StoreGrads, Lane::GpuComm, 1.0, 40, &[fwd]);
        IterationReport {
            batch: BatchReport {
                loss: 0.5,
                touched: 10,
                bytes_loaded: 100,
                bytes_stored: 40,
                order: vec![0, 1],
            },
            timeline: t,
            views: 2,
            prefetch_window: 1,
            compute_threads: 1,
            band_height: 16,
            resize: None,
            faults: FaultStats::default(),
        }
    }

    #[test]
    fn throughput_and_lane_accounting() {
        let r = demo_report();
        assert_eq!(r.makespan(), 4.0);
        assert!((r.throughput() - 0.5).abs() < 1e-12);
        let compute = r.lane(Lane::GpuCompute);
        assert_eq!(compute.busy, 2.0);
        assert_eq!(compute.idle, 2.0);
        assert!((compute.utilization - 0.5).abs() < 1e-12);
        assert!((r.gpu_idle_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(r.comm_bytes_h2d(), 100);
        assert_eq!(r.comm_bytes_d2h(), 40);
        assert_eq!(r.lanes().len(), 4);
    }

    #[test]
    fn device_lane_helpers_cover_sharded_timelines() {
        let mut t = Timeline::new();
        t.push(OpKind::Forward, Lane::compute_of(0), 1.0, &[]);
        t.push(OpKind::Forward, Lane::compute_of(1), 2.0, &[]);
        t.push_with_bytes(OpKind::LoadParams, Lane::comm_of(1), 1.0, 10, &[]);
        let r = IterationReport {
            batch: BatchReport {
                loss: 0.1,
                touched: 1,
                bytes_loaded: 10,
                bytes_stored: 0,
                order: vec![0, 1],
            },
            timeline: t,
            views: 2,
            prefetch_window: 0,
            compute_threads: 1,
            band_height: 16,
            resize: None,
            faults: FaultStats::default(),
        };
        // Device 0's group is the classic lanes; device 1's lanes are only
        // visible through the device-aware helpers.
        let groups = r.all_device_lanes(2);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0][0].busy, 1.0);
        assert_eq!(groups[1][0].busy, 2.0);
        assert_eq!(groups[1][1].busy, 1.0);
        assert_eq!(groups[0][0].lane, Lane::GpuCompute);
        assert_eq!(groups[1][0].lane, Lane::DeviceCompute(1));
        // lanes() alone sees only device 0's compute busy time.
        let classic: f64 = r.lanes().iter().map(|l| l.busy).sum();
        assert_eq!(classic, 1.0);
        assert!(r.device_idle_fraction(1) < r.device_idle_fraction(0));
    }
}
