//! Hardware-aware autotuning of the execution knobs.
//!
//! Every knob that decides CLM's overlap quality used to be hand-set:
//! `compute_threads`, `band_height`, the prefetch window seed and the Adam
//! chunk size all shipped with constants tuned on whatever machine the
//! committed baseline happened to run on (a 1-core container, as
//! `BENCH_runtime.json`'s `host_cores: 1` records).  This module closes
//! the loop in three stages, SimPoint-style — a few calibrated
//! micro-samples predict full-run behaviour:
//!
//! 1. **Probe** — [`sim_device::HostTopology`] detects vendor, core
//!    topology, cache sizes and the cgroup CPU quota;
//! 2. **Calibrate** — [`Calibration::run`] micro-benches the AoSoA Adam
//!    lane kernel, one rasteriser band pass and a staged-row gather for a
//!    few milliseconds each at startup, fitting per-host throughput the
//!    static [`CostModel`](crate::engine) cannot know;
//! 3. **Derive** — [`derive_knobs`] turns topology + calibration into
//!    [`TunedKnobs`], every field of which the existing config knobs
//!    override (`0`/`None` = autotune, anything else wins).
//!
//! The process-wide [`tuned`] result is computed once, cached, and also
//! installed as `gs_render`'s default compute width so the documented
//! `compute_threads = 0` "inherit" sentinel resolves to the tuned value
//! everywhere.  None of this touches numerics: thread counts, window seeds
//! and chunk sizes are pure scheduling, and the tuned `band_height` (which
//! *is* part of the numeric contract) is a pure function of the host, so
//! every backend in one process tunes to the same value and stays
//! bit-comparable.

use gs_core::NON_CRITICAL_FLOATS;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::{compute_packed_chunked, AdamConfig, AdamWorkItem, WORK_ITEM_BYTES};
use gs_render::{render, RenderOptions, DEFAULT_BAND_HEIGHT, TILE_SIZE};
use gs_scene::{
    generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
};
use sim_device::{DeviceProfile, HostTopology};
use std::sync::OnceLock;
use std::time::Instant;

/// Gaussians in the calibration model (small enough that the whole pass
/// stays in the tens of milliseconds, large enough to exercise the lane
/// kernels past their ramp-up).
const CALIBRATION_GAUSSIANS: usize = 512;

/// Rows in the Adam and gather calibration workloads.
const CALIBRATION_ROWS: usize = 4096;

/// Render resolution of the calibration band pass.
const CALIBRATION_WIDTH: u32 = 96;
/// Render resolution of the calibration band pass.
const CALIBRATION_HEIGHT: u32 = 64;

/// Minimum timed duration of each micro-bench (seconds).  Three benches at
/// ~4 ms each keeps the whole calibration pass in the tens of
/// milliseconds.
const CALIBRATION_BUDGET_S: f64 = 0.004;

/// Measured per-host throughput of the three calibrated hot paths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// AoSoA Adam lane kernel throughput (rows/s; one row = one Gaussian's
    /// 59-parameter update).
    pub adam_rows_per_s: f64,
    /// Banded rasteriser forward throughput (rows/s; one row = one
    /// depth-sorted splat that survived projection).
    pub raster_rows_per_s: f64,
    /// Staged-row gather (pinned-buffer memcpy) throughput (rows/s; one
    /// row = one Gaussian's non-critical floats).
    pub gather_rows_per_s: f64,
    /// Wall-clock milliseconds the whole calibration pass took.
    pub wall_ms: f64,
}

impl Calibration {
    /// Runs the three micro-benches (~tens of milliseconds total).
    ///
    /// Everything is serial (`compute_threads = 1`): the calibration
    /// measures single-core kernel throughput, and the autotuner scales by
    /// the topology's core count separately.
    pub fn run() -> Self {
        let started = Instant::now();

        // 1. Adam lane kernel over packed work items, exactly the shape the
        // CPU Adam lane feeds it.
        let mut items: Vec<AdamWorkItem> = (0..CALIBRATION_ROWS)
            .map(|i| {
                let mut item = AdamWorkItem {
                    index: i as u32,
                    step: 1 + (i % 5) as u64,
                    params: [0.0; PARAMS_PER_GAUSSIAN],
                    grad: [0.0; PARAMS_PER_GAUSSIAN],
                    m: [0.0; PARAMS_PER_GAUSSIAN],
                    v: [0.0; PARAMS_PER_GAUSSIAN],
                };
                for k in 0..PARAMS_PER_GAUSSIAN {
                    let x = (i * PARAMS_PER_GAUSSIAN + k) as f32;
                    item.params[k] = 1.0e-2 * (x * 0.11 - 3.0);
                    item.grad[k] = 1.0e-3 * (x * 0.37 - 11.0);
                    item.m[k] = 1.0e-4 * x;
                    item.v[k] = 1.0e-6 * x;
                }
                item
            })
            .collect();
        let config = AdamConfig::default();
        let adam_rows_per_s = timed_rows(CALIBRATION_ROWS as u64, || {
            compute_packed_chunked(&config, &mut items, 1)
        });

        // 2. One serial banded render — the rasteriser's forward band loop
        // over a synthetic scene sized like the kernel bench's smoke tier.
        let dataset = generate_dataset(
            &SceneSpec::of(SceneKind::Bicycle),
            &DatasetConfig {
                num_gaussians: CALIBRATION_GAUSSIANS,
                num_views: 1,
                width: CALIBRATION_WIDTH,
                height: CALIBRATION_HEIGHT,
                seed: 17,
            },
        );
        let model = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: CALIBRATION_GAUSSIANS,
                ..Default::default()
            },
        );
        let camera = &dataset.cameras[0];
        let options = RenderOptions {
            compute_threads: 1,
            ..Default::default()
        };
        let splats = render(&model, camera, &options).aux.projected_count() as u64;
        let raster_rows_per_s = timed_rows(splats.max(1), || {
            std::hint::black_box(render(&model, camera, &options));
        });

        // 3. Staged-row gather: the pinned-buffer copy pattern of the
        // communication lane (indexed rows, not a straight memcpy).
        let store: Vec<[f32; NON_CRITICAL_FLOATS]> = (0..CALIBRATION_ROWS)
            .map(|i| [i as f32 * 0.5; NON_CRITICAL_FLOATS])
            .collect();
        let indices: Vec<u32> = (0..CALIBRATION_ROWS as u32).rev().collect();
        let mut staging = vec![[0.0f32; NON_CRITICAL_FLOATS]; CALIBRATION_ROWS];
        let gather_rows_per_s = timed_rows(CALIBRATION_ROWS as u64, || {
            for (slot, &idx) in staging.iter_mut().zip(&indices) {
                *slot = store[idx as usize];
            }
            std::hint::black_box(&staging);
        });

        Calibration {
            adam_rows_per_s,
            raster_rows_per_s,
            gather_rows_per_s,
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
        }
    }

    /// Single-line JSON object for the benchmark artefacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"adam_rows_per_s\":{:.1},\"raster_rows_per_s\":{:.1},\
             \"gather_rows_per_s\":{:.1},\"wall_ms\":{:.2}}}",
            self.adam_rows_per_s, self.raster_rows_per_s, self.gather_rows_per_s, self.wall_ms,
        )
    }
}

/// Runs `body` repeatedly until the calibration budget elapses and returns
/// the measured rows/s (one warm-up repetition is untimed).
fn timed_rows<F: FnMut()>(rows_per_rep: u64, mut body: F) -> f64 {
    body();
    let start = Instant::now();
    let mut reps = 0u64;
    while reps < 4 || start.elapsed().as_secs_f64() < CALIBRATION_BUDGET_S {
        body();
        reps += 1;
    }
    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        (rows_per_rep * reps) as f64 / secs
    } else {
        0.0
    }
}

/// The knob values the autotuner derived for this host.  Every field is a
/// *default*: the corresponding config field overrides it when set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunedKnobs {
    /// Banded-render workers (`RuntimeConfig`/`ThreadedConfig`/
    /// `RenderOptions::compute_threads` override; their `0` sentinel means
    /// "use this").  The host's effective (quota-aware) core count.
    pub compute_threads: usize,
    /// CPU Adam lane fan-out (`ThreadedConfig::adam_threads` overrides).
    pub adam_threads: usize,
    /// Target rows per Adam chunk so one chunk's working set stays
    /// L2-resident (`ThreadedConfig::adam_chunk_rows` overrides; the
    /// chunked driver fans out only as far as this target requires).
    pub adam_chunk_rows: usize,
    /// Accumulation band height fitted to the L2 size at a reference image
    /// width (`RenderOptions`/`TrainConfig::band_height` override).  Part
    /// of the numeric contract, so it is a pure function of the host — all
    /// backends in one process tune to the same value.
    pub band_height: u32,
    /// Prefetch window seed from the measured fetch/compute ratio
    /// (`prefetch_window` configs override; adaptive policies refine it
    /// per batch).
    pub prefetch_window: usize,
    /// Fitted ratio of the simulated RTX 4090 forward rate to this host's
    /// measured rasteriser rate — the per-host `CostModel` correction
    /// (`RuntimeConfig::cost_scale` stays authoritative; this is the
    /// measured hint surfaced in the artefacts).
    pub sim_compute_scale: f64,
}

impl TunedKnobs {
    /// Single-line JSON object for the benchmark artefacts.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"compute_threads\":{},\"adam_threads\":{},\"adam_chunk_rows\":{},\
             \"band_height\":{},\"prefetch_window\":{},\"sim_compute_scale\":{:.1}}}",
            self.compute_threads,
            self.adam_threads,
            self.adam_chunk_rows,
            self.band_height,
            self.prefetch_window,
            self.sim_compute_scale,
        )
    }
}

/// Reference image width (pixels) the band-height fit assumes; per-pixel
/// band state is roughly image + pixel-state + gradient bytes.
const BAND_FIT_WIDTH: u64 = 1024;
/// Approximate per-pixel bytes live while a band accumulates.
const BAND_FIT_BYTES_PER_PIXEL: u64 = 32;

/// Derives the tuned knob values from a probed topology and a calibration.
/// Pure, so tests can feed mocked topologies (e.g. a cgroup-throttled
/// 64-core host).
pub fn derive_knobs(topo: &HostTopology, cal: &Calibration) -> TunedKnobs {
    let cores = topo.effective_cores();

    // Half the L2 for the chunk (the other half keeps the streamed
    // gradients and lane temporaries resident).
    let l2 = topo.l2_bytes.max(64 * 1024);
    let adam_chunk_rows = ((l2 / 2) as usize / WORK_ITEM_BYTES.max(1)).clamp(256, 16_384);

    // Band height: the largest multiple of the tile size whose band state
    // at a reference width stays in half the L2, clamped to [1, 4] tile
    // rows.  16 (the default) on typical 512K-L2 hosts, wider on big-cache
    // parts.
    let fit = (l2 / 2) / (BAND_FIT_WIDTH * BAND_FIT_BYTES_PER_PIXEL);
    let tiles = (fit / TILE_SIZE as u64).clamp(1, 4) as u32;
    let band_height = (tiles * TILE_SIZE).max(DEFAULT_BAND_HEIGHT);

    // Window seed: the measured per-row fetch/compute ratio.  A micro-batch
    // gathers roughly as many rows as it rasterises splats, so the ratio of
    // the two calibrated rates estimates fetch_time / compute_time — the
    // same quantity the adaptive policies track at run time.
    let ratio = if cal.gather_rows_per_s > 0.0 {
        cal.raster_rows_per_s / cal.gather_rows_per_s
    } else {
        0.0
    };
    let prefetch_window = (ratio.ceil() as usize).clamp(1, 8);

    // CostModel fit: how many times the simulated device outruns this
    // host's measured single-core rasteriser.
    let device = DeviceProfile::rtx4090();
    let ref_gaussians = 100_000u64;
    let ref_pixels = 1920u64 * 1080;
    let device_rows_per_s =
        ref_gaussians as f64 / device.forward_time(ref_gaussians, ref_pixels).max(1e-12);
    let sim_compute_scale = if cal.raster_rows_per_s > 0.0 {
        device_rows_per_s / cal.raster_rows_per_s
    } else {
        1.0
    };

    TunedKnobs {
        compute_threads: cores.min(64),
        adam_threads: cores.min(64),
        adam_chunk_rows,
        band_height,
        prefetch_window,
        sim_compute_scale,
    }
}

/// The cached per-process autotune result: topology probe, calibration
/// measurements and the derived knobs.
#[derive(Debug, Clone)]
pub struct Autotune {
    /// The probed host topology.
    pub topology: HostTopology,
    /// The startup calibration measurements.
    pub calibration: Calibration,
    /// The derived knob defaults.
    pub knobs: TunedKnobs,
}

impl Autotune {
    /// Single-line JSON object — the `autotune` section of
    /// `BENCH_runtime.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"calibration\":{},\"knobs\":{}}}",
            self.calibration.to_json(),
            self.knobs.to_json(),
        )
    }
}

/// Probes, calibrates and derives once per process; subsequent calls are
/// free.  Also installs the tuned compute width as `gs_render`'s default,
/// so every `compute_threads = 0` sentinel in the process resolves to it.
pub fn tuned() -> &'static Autotune {
    static TUNED: OnceLock<Autotune> = OnceLock::new();
    TUNED.get_or_init(|| {
        let topology = HostTopology::cached().clone();
        let calibration = Calibration::run();
        let knobs = derive_knobs(&topology, &calibration);
        gs_render::parallel::set_default_compute_threads(knobs.compute_threads);
        Autotune {
            topology,
            calibration,
            knobs,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mock_topology(logical: usize, physical: usize, l2: u64, quota: Option<f64>) -> HostTopology {
        let mut topo = HostTopology::fallback();
        topo.logical_cpus = logical;
        topo.physical_cores = physical;
        topo.smt = logical > physical;
        topo.l2_bytes = l2;
        topo.cpu_quota = quota;
        topo
    }

    fn mock_calibration() -> Calibration {
        Calibration {
            adam_rows_per_s: 2.0e6,
            raster_rows_per_s: 9.0e4,
            gather_rows_per_s: 5.0e7,
            wall_ms: 12.0,
        }
    }

    #[test]
    fn knobs_scale_with_effective_cores_not_raw_parallelism() {
        // The satellite regression at the autotuner level: a 2-core cgroup
        // quota on a 64-thread host must size the worker knobs at 2.
        let throttled = derive_knobs(
            &mock_topology(64, 32, 512 * 1024, Some(2.0)),
            &mock_calibration(),
        );
        assert_eq!(throttled.compute_threads, 2);
        assert_eq!(throttled.adam_threads, 2);
        let unthrottled = derive_knobs(
            &mock_topology(64, 32, 512 * 1024, None),
            &mock_calibration(),
        );
        assert_eq!(unthrottled.compute_threads, 64);
        assert_eq!(unthrottled.adam_threads, 64);
    }

    #[test]
    fn adam_chunks_fit_half_the_l2() {
        let knobs = derive_knobs(&mock_topology(8, 8, 512 * 1024, None), &mock_calibration());
        assert!(knobs.adam_chunk_rows >= 256);
        assert!(knobs.adam_chunk_rows * WORK_ITEM_BYTES <= 512 * 1024 / 2 + WORK_ITEM_BYTES);
        // A tiny (or unreadable) L2 still yields a workable chunk.
        let small = derive_knobs(&mock_topology(8, 8, 0, None), &mock_calibration());
        assert_eq!(small.adam_chunk_rows, 256);
        // A huge L3-class value clamps at the top.
        let big = derive_knobs(
            &mock_topology(8, 8, 64 * 1024 * 1024, None),
            &mock_calibration(),
        );
        assert_eq!(big.adam_chunk_rows, 16_384);
    }

    #[test]
    fn band_height_is_tile_aligned_and_bounded() {
        for l2 in [0u64, 256 * 1024, 512 * 1024, 1 << 21, 1 << 23, 1 << 26] {
            let knobs = derive_knobs(&mock_topology(4, 4, l2, None), &mock_calibration());
            assert_eq!(knobs.band_height % TILE_SIZE, 0, "l2 {l2}");
            assert!(
                (DEFAULT_BAND_HEIGHT..=4 * TILE_SIZE).contains(&knobs.band_height),
                "l2 {l2}: {}",
                knobs.band_height
            );
        }
        // Typical 512K L2 lands on the numeric-contract default, so tuned
        // and untuned runs on commodity hosts stay bit-comparable.
        let typical = derive_knobs(&mock_topology(4, 4, 512 * 1024, None), &mock_calibration());
        assert_eq!(typical.band_height, DEFAULT_BAND_HEIGHT);
    }

    #[test]
    fn window_seed_tracks_the_measured_ratio() {
        // Gathers much faster than compute: minimal lookahead.
        let fast_gather = derive_knobs(&mock_topology(4, 4, 512 * 1024, None), &mock_calibration());
        assert_eq!(fast_gather.prefetch_window, 1);
        // Bandwidth-bound host (gathers 2.3x slower than compute rows):
        // deeper seed, still clamped.
        let mut cal = mock_calibration();
        cal.gather_rows_per_s = cal.raster_rows_per_s / 2.3;
        let bound = derive_knobs(&mock_topology(4, 4, 512 * 1024, None), &cal);
        assert_eq!(bound.prefetch_window, 3);
        cal.gather_rows_per_s = cal.raster_rows_per_s / 100.0;
        let extreme = derive_knobs(&mock_topology(4, 4, 512 * 1024, None), &cal);
        assert_eq!(extreme.prefetch_window, 8);
        cal.gather_rows_per_s = 0.0;
        let degenerate = derive_knobs(&mock_topology(4, 4, 512 * 1024, None), &cal);
        assert_eq!(degenerate.prefetch_window, 1);
    }

    #[test]
    fn calibration_runs_fast_and_measures_every_path() {
        let cal = Calibration::run();
        assert!(cal.adam_rows_per_s > 0.0);
        assert!(cal.raster_rows_per_s > 0.0);
        assert!(cal.gather_rows_per_s > 0.0);
        // "~tens of ms" with generous slack for loaded CI runners.
        assert!(cal.wall_ms < 2_000.0, "calibration took {} ms", cal.wall_ms);
        let json = cal.to_json();
        assert!(json.contains("\"adam_rows_per_s\":"));
        assert!(json.contains("\"wall_ms\":"));
    }

    #[test]
    fn tuned_is_cached_and_installs_the_render_default() {
        let first = tuned();
        assert!(first.knobs.compute_threads >= 1);
        assert!(first.knobs.sim_compute_scale > 0.0);
        let again = tuned();
        assert_eq!(first.knobs, again.knobs, "one calibration per process");
        // The render-side inherit sentinel resolves to the tuned width.
        assert_eq!(
            gs_render::parallel::default_compute_threads(),
            first.knobs.compute_threads
        );
        let json = first.to_json();
        assert!(json.contains("\"calibration\":{"), "{json}");
        assert!(json.contains("\"knobs\":{"), "{json}");
        assert!(!json.contains('\n'));
    }
}
