//! The pipelined execution engine.
//!
//! [`PipelinedEngine`] runs a [`clm_core::Trainer`] as a discrete-event
//! pipeline on [`sim_device::Timeline`], reproducing the execution structure
//! of the paper's Figure 6: parameter gathers are prefetched on the
//! `GpuComm` lane up to a configurable lookahead window ahead of the
//! micro-batch that consumes them, forward/backward compute runs on
//! `GpuCompute`, gradient stores retire on `GpuComm`, and early-finalised
//! CPU Adam updates run on the `CpuAdam` lane as soon as their gradients
//! reach host memory.  Staged rows live in a recycling
//! [`PinnedBufferPool`].
//!
//! The engine's numeric path is exactly the synchronous trainer's: it calls
//! the same `plan_batch → begin_batch → stage/process/apply_finalized →
//! finish_batch` sequence, so the training trajectory is identical by
//! construction — only the *when* of each operation (and therefore the
//! makespan, overlap and idle metrics) differs.  The non-offloading systems
//! (`Baseline`, `EnhancedBaseline`) and `NaiveOffload` are also supported,
//! producing the no-overlap schedules the figures compare against.

use crate::backend::{ExecutionBackend, ExecutionReport, LaneBusy};
use crate::pool::PinnedBufferPool;
use crate::prefetch::{PrefetchPolicy, PrefetchWindow, WindowSelector};
use crate::report::IterationReport;
use clm_core::{BatchPlan, SystemKind, TrainConfig, Trainer};
use gs_core::camera::Camera;
use gs_core::gaussian::GaussianModel;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::GradientBuffer;
use gs_render::Image;
use gs_scene::Dataset;
use sim_device::{DeviceProfile, FaultPlan, Lane, OpId, OpKind, Timeline};

/// Scheduling-lane cost per Gaussian-view of frustum culling (seconds).
const CULL_COST_PER_GAUSSIAN_VIEW: f64 = 2.0e-10;

/// Scheduling-lane cost per micro-batch pair of ordering/TSP work (seconds).
const ORDER_COST_PER_PAIR: f64 = 1.0e-6;

/// Host-side cost per changed row of a densification resize (seconds):
/// compacting/appending one Gaussian's attribute rows, optimiser state and
/// pinned host row is a few hundred bytes of memcpy.
pub(crate) const RESIZE_COST_PER_ROW: f64 = 1.0e-8;

/// Configuration of the pipelined runtime.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// The simulated device the schedule is costed against.
    pub device: DeviceProfile,
    /// Prefetch lookahead window: how many micro-batches ahead of the one
    /// currently computing may be gathered (0 = synchronous, 1 = double
    /// buffering).  Under [`PrefetchPolicy::Adaptive`] this seeds the first
    /// batch only.
    pub prefetch_window: usize,
    /// Fixed vs. adaptive per-batch window selection.
    pub policy: PrefetchPolicy,
    /// Multiplier applied to Gaussian counts and transferred bytes when
    /// costing timeline operations.  Numerics are unaffected; this lets
    /// reduced-scale scenes exercise the paper-scale (bandwidth-bound)
    /// regime the figures are about.
    pub cost_scale: f64,
    /// Multiplier applied to pixel counts when costing render operations.
    pub pixel_cost_scale: f64,
    /// Worker threads for the banded render compute (0 = inherit the
    /// trainer's `TrainConfig::compute_threads`).  Pure host scheduling:
    /// the simulated timeline costs and the numerics are unaffected; only
    /// the wall-clock time of executing the lanes inline shrinks.
    pub compute_threads: usize,
    /// Accumulation band height override (0 = inherit the trainer's
    /// `TrainConfig::band_height`).  Part of the numeric contract — see
    /// `TrainConfig::band_height`.
    pub band_height: u32,
    /// Simulated devices the scene is sharded across (1 = single device).
    /// [`PipelinedEngine`] is the single-device engine and requires 1; the
    /// multi-device lane groups live in
    /// [`ShardedEngine`](crate::ShardedEngine), which accepts any count.
    pub num_devices: usize,
    /// Warm start for the tracked prefetch fetch/compute ratio (e.g. a
    /// [`WarmStartCache`](crate::WarmStartCache) entry recorded by an
    /// earlier run on the same scene).  `None` cold-starts as before; under
    /// an adaptive/EWMA policy a warm-started engine picks an adapted
    /// window on its first batch.
    pub warm_start_ratio: Option<f64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            device: DeviceProfile::rtx4090(),
            prefetch_window: 2,
            policy: PrefetchPolicy::Fixed,
            cost_scale: 1.0,
            pixel_cost_scale: 1.0,
            compute_threads: 0,
            band_height: 0,
            num_devices: 1,
            warm_start_ratio: None,
        }
    }
}

impl RuntimeConfig {
    /// A config whose scheduling knobs come from the startup autotuner
    /// ([`crate::autotune::tuned`]): quota-aware compute width, the
    /// calibrated prefetch-window seed and the host-derived band height.
    /// Set any field afterwards to override a derived value.
    pub fn autotuned() -> Self {
        let knobs = crate::autotune::tuned().knobs;
        RuntimeConfig {
            prefetch_window: knobs.prefetch_window,
            compute_threads: knobs.compute_threads,
            band_height: knobs.band_height,
            ..Default::default()
        }
    }
}

/// The discrete-event costing rules shared by the single-device
/// [`PipelinedEngine`] and the multi-device
/// [`ShardedEngine`](crate::ShardedEngine): how Gaussian counts, bytes and
/// pixels translate into simulated device seconds.
#[derive(Debug, Clone)]
pub(crate) struct CostModel {
    pub device: DeviceProfile,
    pub cost_scale: f64,
    pub pixel_cost_scale: f64,
}

impl CostModel {
    pub fn from_runtime(config: &RuntimeConfig) -> Self {
        CostModel {
            device: config.device.clone(),
            cost_scale: config.cost_scale,
            pixel_cost_scale: config.pixel_cost_scale,
        }
    }

    pub fn scaled_bytes(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.cost_scale).round() as u64
    }

    pub fn scaled_gaussians(&self, count: usize) -> u64 {
        (count as f64 * self.cost_scale).round() as u64
    }

    pub fn scaled_pixels(&self, image: &Image) -> u64 {
        (image.pixel_count() as f64 * self.pixel_cost_scale).round() as u64
    }

    pub fn scheduling_time(&self, model_len: usize, plan: &BatchPlan) -> f64 {
        let n = self.scaled_gaussians(model_len) as f64;
        let m = plan.num_microbatches() as f64;
        n * m * CULL_COST_PER_GAUSSIAN_VIEW + m * m * ORDER_COST_PER_PAIR
    }

    /// Host seconds the boundary resize recorded in `plan` costs (0 when
    /// the plan has none).
    pub fn resize_time(&self, plan: &BatchPlan) -> f64 {
        plan.resize
            .as_ref()
            .map(|e| self.scaled_gaussians(e.rows_changed()) as f64 * RESIZE_COST_PER_ROW)
            .unwrap_or(0.0)
    }
}

/// The largest per-micro-batch fetch of a plan, in rows — what the pinned
/// staging pool must be able to lease after a resize.
pub(crate) fn max_fetch_rows(plan: &BatchPlan) -> usize {
    plan.fetched.iter().map(|s| s.len()).max().unwrap_or(0)
}

/// A trainer executing as a discrete-event pipeline on the simulated device.
#[derive(Debug)]
pub struct PipelinedEngine {
    trainer: Trainer,
    config: RuntimeConfig,
    pool: PinnedBufferPool,
    /// Adaptive-window state fed by each batch's simulated fetch/compute
    /// times.
    window_selector: WindowSelector,
    /// Installed fault-injection plan, if any.  Faults only ever inflate
    /// simulated durations or inject staging denials — the numeric path is
    /// untouched by construction.
    fault_plan: Option<FaultPlan>,
}

impl PipelinedEngine {
    /// Creates an engine around an initial model.
    ///
    /// # Panics
    /// Panics if `cost_scale` or `pixel_cost_scale` is not strictly
    /// positive.
    pub fn new(initial_model: GaussianModel, train: TrainConfig, config: RuntimeConfig) -> Self {
        assert!(config.cost_scale > 0.0, "cost_scale must be positive");
        assert!(
            config.pixel_cost_scale > 0.0,
            "pixel_cost_scale must be positive"
        );
        assert!(
            config.num_devices == 1,
            "PipelinedEngine is single-device (num_devices must be exactly 1); \
             use ShardedEngine for multi-device configs"
        );
        let mut train = train;
        if config.compute_threads > 0 {
            train.compute_threads = config.compute_threads;
        }
        if config.band_height > 0 {
            train.band_height = config.band_height;
        }
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        PipelinedEngine {
            trainer: Trainer::new(initial_model, train),
            config,
            pool: PinnedBufferPool::new(),
            window_selector,
            fault_plan: None,
        }
    }

    /// Creates an engine around an already-built trainer — the
    /// checkpoint-restore path: the trainer carries its restored model,
    /// optimiser moments and counters, and training continues from there.
    ///
    /// # Panics
    /// Panics under the same config conditions as [`new`](Self::new).
    pub fn with_trainer(mut trainer: Trainer, config: RuntimeConfig) -> Self {
        assert!(config.cost_scale > 0.0, "cost_scale must be positive");
        assert!(
            config.pixel_cost_scale > 0.0,
            "pixel_cost_scale must be positive"
        );
        assert!(
            config.num_devices == 1,
            "PipelinedEngine is single-device (num_devices must be exactly 1); \
             use ShardedEngine for multi-device configs"
        );
        if config.compute_threads > 0 {
            trainer.set_compute_threads(config.compute_threads);
        }
        if config.band_height > 0 {
            trainer.set_band_height(config.band_height);
        }
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        PipelinedEngine {
            trainer,
            config,
            pool: PinnedBufferPool::new(),
            window_selector,
            fault_plan: None,
        }
    }

    /// Installs a fault-injection plan: from the next batch on, the
    /// timeline's ops are filtered through the plan's seeded schedule
    /// (transient retries, straggler lanes) and staging-pool acquires may
    /// be denied.  Simulated backoff is priced at the engine's cost scale.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        plan.scale_backoff(self.config.cost_scale);
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The wrapped trainer (model, config, counters).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Pinned staging-pool statistics accumulated so far.
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Caps the pinned staging pool at `limit` simultaneously checked-out
    /// buffers (`None` removes the cap).  A multi-tenant host enforces
    /// per-session pinned-memory budgets through this seam: the serving
    /// layer clamps the prefetch window so the cap is never reached, and the
    /// pool's high-water/`denied` accounting proves it.
    pub fn set_staging_capacity(&mut self, limit: Option<usize>) {
        self.pool.set_capacity_limit(limit);
    }

    /// The adaptive-window state (tracked fetch/compute ratios), e.g. for
    /// recording into a [`WarmStartCache`](crate::WarmStartCache).
    pub fn window_selector(&self) -> &WindowSelector {
        &self.window_selector
    }

    /// Mean PSNR of the current model over a set of posed images (delegates
    /// to the trainer).
    pub fn evaluate_psnr(&self, cameras: &[Camera], targets: &[Image]) -> f32 {
        self.trainer.evaluate_psnr(cameras, targets)
    }

    /// Executes one training batch as a pipelined schedule, returning the
    /// numeric batch report together with the executed timeline.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn run_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> IterationReport {
        assert_eq!(
            cameras.len(),
            targets.len(),
            "need one target image per camera"
        );
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        // Densification boundary first: every lane of this engine is scoped
        // to one batch, so between batches the pipeline is drained and the
        // model may resize.  The plan is computed against the post-resize
        // model; the resize itself is costed on the host scheduler lane and
        // re-leases the pinned staging pool at the new row counts.
        let plan = self.trainer.resize_and_plan(cameras);
        let mut grads = GradientBuffer::for_model(self.trainer.model());
        let mut timeline = Timeline::new();
        let fault_before = self.fault_plan.as_ref().map(|p| p.stats());
        if let Some(fp) = &self.fault_plan {
            timeline.install_fault_sink(fp.sink());
        }
        let cost = CostModel::from_runtime(&self.config);
        let window = self
            .window_selector
            .choose(self.config.policy, self.config.prefetch_window);

        let mut sched_deps = Vec::new();
        if let Some(event) = plan.resize.as_ref() {
            self.pool.reprovision(crate::engine::max_fetch_rows(&plan));
            sched_deps.push(timeline.push_traced(
                OpKind::Resize,
                Lane::CpuScheduler,
                cost.resize_time(&plan),
                0,
                event.rows_changed() as u64,
                None,
                &[],
            ));
        }
        let sched = timeline.push_traced(
            OpKind::Scheduling,
            Lane::CpuScheduler,
            cost.scheduling_time(self.trainer.model().len(), &plan),
            0,
            self.trainer.model().len() as u64,
            None,
            &sched_deps,
        );

        let total_loss = match self.trainer.config().system {
            SystemKind::Clm => self.run_clm_batch(
                &plan,
                window,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
                &cost,
            ),
            SystemKind::NaiveOffload => run_naive_batch(
                &mut self.trainer,
                &cost,
                &plan,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
            ),
            SystemKind::Baseline | SystemKind::EnhancedBaseline => run_gpu_only_batch(
                &mut self.trainer,
                &cost,
                &plan,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
            ),
        };

        // Feed the adaptive window policy with this batch's simulated
        // fetch/compute balance.
        if self.trainer.config().system == SystemKind::Clm {
            self.window_selector.observe(
                self.config.policy,
                timeline.time_by_kind(OpKind::LoadParams),
                timeline.time_by_kind(OpKind::Forward) + timeline.time_by_kind(OpKind::Backward),
            );
        }

        let batch = self.trainer.finish_batch(&plan, &grads, total_loss);
        let faults = match (&self.fault_plan, fault_before) {
            (Some(p), Some(before)) => p.stats().since(&before),
            _ => Default::default(),
        };
        IterationReport {
            batch,
            timeline,
            views: cameras.len(),
            prefetch_window: window,
            compute_threads: gs_render::parallel::resolve_compute_threads(
                self.trainer.config().compute_threads,
            ),
            band_height: self.trainer.resolved_band_height(),
            resize: plan.resize.as_ref().map(|e| e.report()),
            faults,
        }
    }

    /// Trains over the whole dataset once (views grouped into batches in
    /// trajectory order), returning the per-iteration reports.
    pub fn run_epoch(&mut self, dataset: &Dataset, targets: &[Image]) -> Vec<IterationReport> {
        assert_eq!(dataset.cameras.len(), targets.len());
        let batch = self.trainer.config().batch_size.max(1);
        let mut reports = Vec::new();
        let mut start = 0;
        while start < dataset.cameras.len() {
            let end = (start + batch).min(dataset.cameras.len());
            reports.push(self.run_batch(&dataset.cameras[start..end], &targets[start..end]));
            start = end;
        }
        reports
    }

    /// Leases a staging buffer, honouring an installed fault plan's
    /// pinned-pool exhaustion schedule: a denied lease stalls one backoff
    /// interval on the host scheduler lane and then succeeds (the pool
    /// recycles at the batch boundary), so exhaustion costs schedule time
    /// but never changes what is staged.
    fn acquire_staging(
        &mut self,
        rows: usize,
        timeline: &mut Timeline,
    ) -> crate::pool::StagingBuffer {
        if let Some(fp) = &self.fault_plan {
            if fp.next_staging_acquire() {
                self.pool.note_denied();
                timeline.push_traced(
                    OpKind::Other,
                    Lane::CpuScheduler,
                    fp.retry().backoff_base,
                    0,
                    0,
                    None,
                    &[],
                );
            }
        }
        self.pool.acquire(rows)
    }

    /// The CLM pipeline: windowed gather prefetch on `GpuComm`, compute on
    /// `GpuCompute`, per-transition gradient stores, and early-finalised CPU
    /// Adam on `CpuAdam`.
    #[allow(clippy::too_many_arguments)]
    fn run_clm_batch(
        &mut self,
        plan: &BatchPlan,
        window: usize,
        cameras: &[Camera],
        targets: &[Image],
        grads: &mut GradientBuffer,
        timeline: &mut Timeline,
        sched: OpId,
        cost: &CostModel,
    ) -> f32 {
        let m = plan.num_microbatches();
        let window = PrefetchWindow::new(window, m);
        let overlapped = self.trainer.overlapped();

        self.trainer.begin_batch(plan, grads);
        if overlapped {
            // F_0: Gaussians the batch never touches are finalised from the
            // start; their CPU Adam update overlaps the whole pipeline.
            timeline.push_traced(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                cost.device.cpu_adam_time(
                    cost.scaled_gaussians(plan.untouched.len()) * PARAMS_PER_GAUSSIAN as u64,
                ),
                0,
                plan.untouched.len() as u64,
                None,
                &[sched],
            );
        }

        let mut gather_ops: Vec<OpId> = Vec::with_capacity(m);
        let mut backward_ops: Vec<OpId> = Vec::with_capacity(m);
        let mut staging_slots: Vec<Option<crate::pool::StagingBuffer>> =
            (0..m).map(|_| None).collect();

        // Issue the initial prefetch frontier.
        for i in window.issuable_after(None) {
            self.issue_gather(
                plan,
                i,
                &window,
                &backward_ops,
                timeline,
                sched,
                &mut gather_ops,
                cost,
            );
            let mut buf = self.acquire_staging(plan.fetched[i].len(), timeline);
            self.trainer.stage_microbatch(plan, i, &mut buf);
            staging_slots[i] = Some(buf);
        }

        let mut total_loss = 0.0f32;
        let mut last_store = sched;
        for i in 0..m {
            let buf = staging_slots[i]
                .take()
                .expect("prefetch schedule must have staged this micro-batch");

            let pixels = cost.scaled_pixels(&targets[plan.order[i]]);
            let rows = plan.ordered_sets[i].len() as u64;
            let gaussians = cost.scaled_gaussians(plan.ordered_sets[i].len());
            let fwd = timeline.push_traced(
                OpKind::Forward,
                Lane::GpuCompute,
                cost.device.forward_time(gaussians, pixels),
                0,
                rows,
                Some(i as u32),
                &[gather_ops[i]],
            );
            let bwd = timeline.push_traced(
                OpKind::Backward,
                Lane::GpuCompute,
                cost.device.backward_time(gaussians, pixels),
                0,
                rows,
                Some(i as u32),
                &[fwd],
            );
            backward_ops.push(bwd);

            total_loss += self
                .trainer
                .process_microbatch(plan, i, cameras, targets, &buf, grads);
            self.pool.release(buf);

            // Retire this micro-batch's finalised gradients to host memory …
            let group_rows = plan.finalization.finalized_by(i).len() as u64;
            let store_bytes = cost.scaled_bytes(plan.store_bytes(i));
            let store = timeline.push_traced(
                OpKind::StoreGrads,
                Lane::GpuComm,
                cost.device.transfer_time(store_bytes),
                store_bytes,
                group_rows,
                Some(i as u32),
                &[bwd],
            );
            last_store = store;

            // … and update them on the CPU Adam thread while later
            // micro-batches keep the GPU busy.
            self.trainer.apply_finalized(plan, i, grads);
            if overlapped {
                let group = plan.finalization.finalized_by(i);
                timeline.push_traced(
                    OpKind::CpuAdamUpdate,
                    Lane::CpuAdam,
                    cost.device.cpu_adam_time(
                        cost.scaled_gaussians(group.len()) * PARAMS_PER_GAUSSIAN as u64,
                    ),
                    0,
                    group.len() as u64,
                    Some(i as u32),
                    &[store],
                );
            }

            // This completion frees the next prefetch slot.
            for j in window.issuable_after(Some(i)) {
                self.issue_gather(
                    plan,
                    j,
                    &window,
                    &backward_ops,
                    timeline,
                    sched,
                    &mut gather_ops,
                    cost,
                );
                let mut buf = self.acquire_staging(plan.fetched[j].len(), timeline);
                self.trainer.stage_microbatch(plan, j, &mut buf);
                staging_slots[j] = Some(buf);
            }
        }

        if !overlapped {
            // Batch-end CPU Adam over the whole model (dense semantics).
            let n = cost.scaled_gaussians(self.trainer.model().len());
            timeline.push_traced(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                cost.device.cpu_adam_time(n * PARAMS_PER_GAUSSIAN as u64),
                0,
                self.trainer.model().len() as u64,
                None,
                &[last_store],
            );
        }
        total_loss
    }

    /// Pushes the gather of micro-batch `i` on the communication lane,
    /// honouring the prefetch window's compute dependency.
    #[allow(clippy::too_many_arguments)]
    fn issue_gather(
        &mut self,
        plan: &BatchPlan,
        i: usize,
        window: &PrefetchWindow,
        backward_ops: &[OpId],
        timeline: &mut Timeline,
        sched: OpId,
        gather_ops: &mut Vec<OpId>,
        cost: &CostModel,
    ) {
        debug_assert_eq!(gather_ops.len(), i, "gathers must be issued in order");
        let mut deps = vec![sched];
        if let Some(compute_of) = window.gather_depends_on_compute_of(i) {
            deps.push(backward_ops[compute_of]);
        }
        let bytes = cost.scaled_bytes(plan.fetch_bytes(i));
        let id = timeline.push_traced(
            OpKind::LoadParams,
            Lane::GpuComm,
            cost.device.transfer_time(bytes),
            bytes,
            plan.fetched[i].len() as u64,
            Some(i as u32),
            &deps,
        );
        gather_ops.push(id);
    }
}

/// Naive (ZeRO-Offload-style) schedule: whole-model upload, serial
/// compute, whole-gradient store, then one dense CPU Adam pass — no
/// overlap anywhere.  Shared by the single-device engine and the sharded
/// engine (which runs the no-overlap comparison systems on device 0).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_naive_batch(
    trainer: &mut Trainer,
    cost: &CostModel,
    plan: &BatchPlan,
    cameras: &[Camera],
    targets: &[Image],
    grads: &mut GradientBuffer,
    timeline: &mut Timeline,
    sched: OpId,
) -> f32 {
    let n = trainer.model().len();
    let full_bytes = cost.scaled_bytes((n * PARAMS_PER_GAUSSIAN * gs_core::BYTES_PER_PARAM) as u64);
    let upload = timeline.push_traced(
        OpKind::LoadParams,
        Lane::GpuComm,
        cost.device.transfer_time(full_bytes),
        full_bytes,
        n as u64,
        None,
        &[sched],
    );

    trainer.begin_batch(plan, grads);
    let mut total_loss = 0.0f32;
    let mut staging = Vec::new();
    let mut last_bwd = upload;
    for i in 0..plan.num_microbatches() {
        let pixels = cost.scaled_pixels(&targets[plan.order[i]]);
        let rows = plan.ordered_sets[i].len() as u64;
        let gaussians = cost.scaled_gaussians(plan.ordered_sets[i].len());
        let fwd = timeline.push_traced(
            OpKind::Forward,
            Lane::GpuCompute,
            cost.device.forward_time(gaussians, pixels),
            0,
            rows,
            Some(i as u32),
            &[upload],
        );
        let bwd = timeline.push_traced(
            OpKind::Backward,
            Lane::GpuCompute,
            cost.device.backward_time(gaussians, pixels),
            0,
            rows,
            Some(i as u32),
            &[fwd],
        );
        last_bwd = bwd;
        trainer.stage_microbatch(plan, i, &mut staging);
        total_loss += trainer.process_microbatch(plan, i, cameras, targets, &staging, grads);
        trainer.apply_finalized(plan, i, grads);
    }

    let store = timeline.push_traced(
        OpKind::StoreGrads,
        Lane::GpuComm,
        cost.device.transfer_time(full_bytes),
        full_bytes,
        n as u64,
        None,
        &[last_bwd],
    );
    timeline.push_traced(
        OpKind::CpuAdamUpdate,
        Lane::CpuAdam,
        cost.device
            .cpu_adam_time(cost.scaled_gaussians(n) * PARAMS_PER_GAUSSIAN as u64),
        0,
        n as u64,
        None,
        &[store],
    );
    total_loss
}

/// GPU-only baselines: compute per micro-batch plus a fused GPU Adam
/// step at batch end; no PCIe traffic at all.  Shared like
/// [`run_naive_batch`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_gpu_only_batch(
    trainer: &mut Trainer,
    cost: &CostModel,
    plan: &BatchPlan,
    cameras: &[Camera],
    targets: &[Image],
    grads: &mut GradientBuffer,
    timeline: &mut Timeline,
    sched: OpId,
) -> f32 {
    let n = trainer.model().len();
    let fused_culling = trainer.config().system == SystemKind::Baseline;

    trainer.begin_batch(plan, grads);
    let mut total_loss = 0.0f32;
    let mut staging = Vec::new();
    let mut last_bwd = sched;
    for i in 0..plan.num_microbatches() {
        let pixels = cost.scaled_pixels(&targets[plan.order[i]]);
        // The plain baseline feeds every Gaussian through the kernels;
        // the enhanced baseline pre-culls.
        let count = if fused_culling {
            n
        } else {
            plan.ordered_sets[i].len()
        };
        let gaussians = cost.scaled_gaussians(count);
        let fwd = timeline.push_traced(
            OpKind::Forward,
            Lane::GpuCompute,
            cost.device.forward_time(gaussians, pixels),
            0,
            count as u64,
            Some(i as u32),
            &[sched],
        );
        let bwd = timeline.push_traced(
            OpKind::Backward,
            Lane::GpuCompute,
            cost.device.backward_time(gaussians, pixels),
            0,
            count as u64,
            Some(i as u32),
            &[fwd],
        );
        last_bwd = bwd;
        trainer.stage_microbatch(plan, i, &mut staging);
        total_loss += trainer.process_microbatch(plan, i, cameras, targets, &staging, grads);
        trainer.apply_finalized(plan, i, grads);
    }

    timeline.push_traced(
        OpKind::GpuAdamUpdate,
        Lane::GpuCompute,
        cost.device
            .gpu_adam_time(cost.scaled_gaussians(n) * PARAMS_PER_GAUSSIAN as u64),
        0,
        n as u64,
        None,
        &[last_bwd],
    );
    total_loss
}

impl ExecutionBackend for PipelinedEngine {
    fn backend_name(&self) -> &'static str {
        "simulated"
    }

    fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Executes the batch inline while costing it on the event timeline.
    /// The report's wall-clock time is measured (all lanes ran on this
    /// thread), while the per-lane busy times are the *simulated* device
    /// seconds from the timeline.
    fn execute_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> ExecutionReport {
        let wall_start = std::time::Instant::now();
        let report = self.run_batch(cameras, targets);
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let t = &report.timeline;
        ExecutionReport {
            views: report.views,
            prefetch_window: report.prefetch_window,
            compute_threads: report.compute_threads,
            band_height: report.band_height,
            wall_seconds,
            lanes: LaneBusy {
                compute: t.busy_time(Lane::GpuCompute),
                comm: t.busy_time(Lane::GpuComm),
                adam: t.busy_time(Lane::CpuAdam),
                scheduling: t.busy_time(Lane::CpuScheduler),
            },
            device_lanes: Vec::new(),
            sim_makespan: Some(t.makespan()),
            resize: report.resize,
            faults: report.faults,
            batch: report.batch,
        }
    }
}
