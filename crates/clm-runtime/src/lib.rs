//! Pipelined execution engine for the CLM trainers.
//!
//! The seed reproduction kept two worlds apart: `clm_core::train` ran the
//! functional trainers fully synchronously, while `sim_device::Timeline`
//! modelled concurrent lanes nobody drove with real training.  This crate
//! bridges them: [`PipelinedEngine`] executes the four trainers as
//! discrete-event pipelines — prefetched parameter gathers on the `GpuComm`
//! lane ([`PrefetchWindow`]), forward/backward on `GpuCompute`, per-
//! transition gradient stores, and early-finalised CPU Adam on the
//! `CpuAdam` lane driven by `clm_core::FinalizationPlan` — while producing
//! exactly the synchronous trainer's numbers.
//!
//! * [`PinnedBufferPool`] — recycling pinned host staging buffers with
//!   high-water accounting (one buffer per prefetch slot);
//! * [`PrefetchWindow`] — the lookahead policy (0 = synchronous, 1 = double
//!   buffering, ≥ batch size = unconstrained) and [`PrefetchPolicy`] — how
//!   the window is chosen per batch (fixed, adapted to the last batch's
//!   measured fetch/compute ratio, or to its EWMA-smoothed average);
//! * [`PipelinedEngine`] / [`RuntimeConfig`] — the simulated backend;
//! * [`ThreadedBackend`] / [`ThreadedConfig`] — the threaded backend: the
//!   gather and CPU Adam lanes run on dedicated worker threads
//!   ([`workers`]), so the overlap is real and wall-clock measurable;
//! * [`ShardedEngine`] — the multi-GPU backend: N per-device lane groups
//!   (gather / compute / CPU Adam) on one shared timeline, fed by
//!   `gs_scene`'s visibility-aware Gaussian partitioner, with data-parallel
//!   micro-batches and a fixed-device-order gradient all-reduce that keeps
//!   the trajectory bit-identical to the 1-device trainer for any shard
//!   count;
//! * [`ExecutionBackend`] / [`ExecutionReport`] — the common abstraction
//!   the benchmark harness drives both backends through;
//! * [`IterationReport`] — per-iteration makespan, per-lane busy/idle time
//!   and communication volume (Figures 11–15, Table 7);
//! * [`autotune`] — host-topology probe + startup calibration that derives
//!   per-host defaults for every scheduling knob ([`tuned`]), all
//!   overridable through the config structs above.
//!
//! # Numerical equivalence
//!
//! The engine drives the trainer through the same
//! `plan_batch → begin_batch → stage → process → apply_finalized →
//! finish_batch` sequence the synchronous `Trainer::train_batch` uses, so
//! the loss/PSNR trajectory is identical by construction — the paper's core
//! claim that overlap changes *when* work runs, never *what* it computes.
//! `Trainer::process_microbatch` additionally asserts that prefetched rows
//! never go stale, validating the finalisation schedule's non-interference
//! guarantee.
//!
//! # Example
//!
//! ```
//! use clm_core::TrainConfig;
//! use clm_runtime::{PipelinedEngine, RuntimeConfig};
//! use gs_scene::{generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig,
//!                SceneKind, SceneSpec};
//! use sim_device::Lane;
//!
//! let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
//! let targets = clm_core::ground_truth_images(&dataset);
//! let init = init_from_point_cloud(
//!     &dataset.ground_truth,
//!     &InitConfig { num_gaussians: 100, ..Default::default() },
//! );
//! let mut engine = PipelinedEngine::new(init, TrainConfig::default(), RuntimeConfig::default());
//! let report = engine.run_batch(&dataset.cameras[..4], &targets[..4]);
//! assert!(report.makespan() > 0.0);
//! assert!(report.lane(Lane::GpuCompute).busy > 0.0);
//! ```

pub mod autotune;
pub mod backend;
pub mod engine;
pub mod pool;
pub mod prefetch;
pub mod report;
pub mod sharded;
pub mod threaded;
pub mod workers;

pub use autotune::{derive_knobs, tuned, Autotune, Calibration, TunedKnobs};
pub use backend::{ExecutionBackend, ExecutionReport, LaneBusy};
pub use engine::{PipelinedEngine, RuntimeConfig};
pub use pool::{PinnedBufferPool, PoolStats, StagingBuffer};
pub use prefetch::{PrefetchPolicy, PrefetchWindow, TuningRecord, WarmStartCache, WindowSelector};
pub use report::{IterationReport, LaneReport};
pub use sharded::{ShardedEngine, PEER_HOP_FACTOR};
pub use threaded::{ThreadedBackend, ThreadedConfig};
pub use workers::{spawn_lane, BusyTimer, RecordedSpan, SpanLog, SpanLogError, WorkerLane};

#[cfg(test)]
mod tests {
    use super::*;
    use clm_core::{SystemKind, TrainConfig, Trainer};
    use gs_core::gaussian::GaussianModel;
    use gs_render::Image;
    use gs_scene::{
        generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
        SceneSpec,
    };
    use sim_device::Lane;

    fn tiny_setup() -> (Dataset, Vec<Image>, GaussianModel) {
        let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
        let targets = clm_core::ground_truth_images(&dataset);
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 150,
                ..Default::default()
            },
        );
        (dataset, targets, init)
    }

    fn runtime_config(window: usize) -> RuntimeConfig {
        RuntimeConfig {
            prefetch_window: window,
            ..Default::default()
        }
    }

    #[test]
    fn pipelined_clm_matches_synchronous_trainer_exactly() {
        // The tentpole claim: pipelining changes the schedule, never the
        // numerics.  Same model, same losses, same traffic, same order.
        let (dataset, targets, init) = tiny_setup();
        let train = TrainConfig::default();
        let mut engine = PipelinedEngine::new(init.clone(), train.clone(), runtime_config(2));
        let mut sync = Trainer::new(init, train);
        for start in [0usize, 4] {
            let cams = &dataset.cameras[start..start + 4];
            let tgts = &targets[start..start + 4];
            let piped = engine.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(piped.batch, reference);
        }
        assert_eq!(engine.trainer().model(), sync.model());
    }

    #[test]
    fn autotuned_run_matches_the_serial_oracle() {
        // The autotuning acceptance gate: a fresh run that adopts every
        // derived knob (thread counts, Adam chunk size, window seed, band
        // height) still trains bit-identically to the synchronous trainer.
        // All tuned knobs are pure scheduling except `band_height`, which
        // is part of the numeric contract — the oracle shares it through
        // `TrainConfig`, exactly as a caller opting into autotuning would.
        let (dataset, targets, init) = tiny_setup();
        let knobs = tuned().knobs;
        let train = TrainConfig {
            band_height: knobs.band_height,
            ..Default::default()
        };
        let mut threaded =
            ThreadedBackend::new(init.clone(), train.clone(), ThreadedConfig::autotuned());
        let mut piped =
            PipelinedEngine::new(init.clone(), train.clone(), RuntimeConfig::autotuned());
        let mut sync = Trainer::new(init, train);
        for start in [0usize, 4] {
            let cams = &dataset.cameras[start..start + 4];
            let tgts = &targets[start..start + 4];
            let thr_report = threaded.run_batch(cams, tgts);
            let pipe_report = piped.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(thr_report.batch, reference);
            assert_eq!(pipe_report.batch, reference);
            // The reports record the knobs the run actually used.
            assert_eq!(thr_report.compute_threads, knobs.compute_threads);
            assert_eq!(thr_report.band_height, knobs.band_height);
            assert_eq!(pipe_report.band_height, knobs.band_height);
        }
        assert_eq!(threaded.trainer().model(), sync.model());
        assert_eq!(piped.trainer().model(), sync.model());
    }

    #[test]
    fn prefetch_window_never_changes_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut reference: Option<(clm_core::BatchReport, GaussianModel)> = None;
        for window in [0usize, 1, 3, 64] {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            let report = engine.run_batch(cams, tgts);
            match &reference {
                None => reference = Some((report.batch, engine.trainer().model().clone())),
                Some((batch, model)) => {
                    assert_eq!(&report.batch, batch, "window {window}");
                    assert_eq!(engine.trainer().model(), model, "window {window}");
                }
            }
        }
    }

    #[test]
    fn wider_windows_reduce_gpu_compute_idle() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let idle_of = |window: usize| {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts).gpu_idle_fraction()
        };
        let synchronous = idle_of(0);
        let double_buffered = idle_of(1);
        let unconstrained = idle_of(64);
        assert!(
            double_buffered < synchronous,
            "double buffering must hide gathers: {double_buffered} vs {synchronous}"
        );
        assert!(
            unconstrained <= double_buffered + 1e-12,
            "wider windows never hurt: {unconstrained} vs {double_buffered}"
        );
    }

    #[test]
    fn pipelined_makespan_beats_synchronous_schedule() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let makespan_of = |window: usize| {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts).makespan()
        };
        assert!(makespan_of(2) < makespan_of(0));
    }

    #[test]
    fn staging_pool_recycles_and_respects_window_high_water() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        for window in [0usize, 1, 2] {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts);
            engine.run_batch(cams, tgts);
            let stats = engine.pool_stats();
            assert_eq!(stats.outstanding, 0, "all buffers returned");
            assert_eq!(stats.acquires, 12, "one gather per micro-batch");
            assert_eq!(
                stats.high_water_buffers,
                window + 1,
                "window {window} needs window+1 staging buffers"
            );
            // The second batch runs entirely from recycled buffers, and the
            // staging paths make zero extra copies: fresh allocations only
            // ever extended the live frontier.
            assert!(stats.recycled >= 6, "window {window}: {stats:?}");
            assert_eq!(
                stats.allocated, stats.high_water_buffers as u64,
                "window {window} allocated beyond the frontier: {stats:?}"
            );
        }
    }

    #[test]
    fn all_four_systems_execute_and_report() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        for system in SystemKind::ALL {
            let mut engine = PipelinedEngine::new(
                init.clone(),
                TrainConfig {
                    system,
                    ..Default::default()
                },
                RuntimeConfig::default(),
            );
            let report = engine.run_batch(cams, tgts);
            assert!(report.makespan() > 0.0, "{system}");
            assert!(report.lane(Lane::GpuCompute).busy > 0.0, "{system}");
            assert!(report.throughput() > 0.0, "{system}");
            match system {
                SystemKind::Baseline | SystemKind::EnhancedBaseline => {
                    assert_eq!(report.comm_bytes_h2d(), 0, "{system}");
                    assert_eq!(report.batch.bytes_loaded, 0, "{system}");
                }
                SystemKind::NaiveOffload | SystemKind::Clm => {
                    assert!(report.comm_bytes_h2d() > 0, "{system}");
                    assert!(report.lane(Lane::CpuAdam).busy > 0.0, "{system}");
                }
            }
        }
    }

    #[test]
    fn runtime_systems_match_their_synchronous_counterparts() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        for system in SystemKind::ALL {
            let train = TrainConfig {
                system,
                ..Default::default()
            };
            let mut engine =
                PipelinedEngine::new(init.clone(), train.clone(), RuntimeConfig::default());
            let mut sync = Trainer::new(init.clone(), train);
            let piped = engine.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(piped.batch, reference, "{system}");
            assert_eq!(engine.trainer().model(), sync.model(), "{system}");
        }
    }

    #[test]
    fn clm_timeline_traffic_matches_batch_accounting_at_unit_scale() {
        let (dataset, targets, init) = tiny_setup();
        let mut engine = PipelinedEngine::new(init, TrainConfig::default(), runtime_config(2));
        let report = engine.run_batch(&dataset.cameras[..5], &targets[..5]);
        assert_eq!(report.comm_bytes_h2d(), report.batch.bytes_loaded);
        assert_eq!(report.comm_bytes_d2h(), report.batch.bytes_stored);
    }

    #[test]
    fn cost_scale_changes_schedule_but_not_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let run = |cost_scale: f64| {
            let mut engine = PipelinedEngine::new(
                init.clone(),
                TrainConfig::default(),
                RuntimeConfig {
                    cost_scale,
                    ..runtime_config(2)
                },
            );
            let report = engine.run_batch(cams, tgts);
            (
                report.makespan(),
                report.batch,
                engine.trainer().model().clone(),
            )
        };
        let (makespan_1x, batch_1x, model_1x) = run(1.0);
        let (makespan_1000x, batch_1000x, model_1000x) = run(1000.0);
        assert!(makespan_1000x > makespan_1x * 100.0);
        assert_eq!(batch_1x, batch_1000x);
        assert_eq!(model_1x, model_1000x);
    }

    #[test]
    fn run_epoch_covers_every_view() {
        let (dataset, targets, init) = tiny_setup();
        let mut engine = PipelinedEngine::new(
            init,
            TrainConfig {
                batch_size: 4,
                ..Default::default()
            },
            RuntimeConfig::default(),
        );
        let reports = engine.run_epoch(&dataset, &targets);
        let views: usize = reports.iter().map(|r| r.views).sum();
        assert_eq!(views, dataset.cameras.len());
        assert!(reports.iter().all(|r| r.makespan() > 0.0));
    }

    #[test]
    fn threaded_backend_matches_simulated_engine_exactly() {
        // The threaded backend's whole reason to exist is that it changes
        // *where* work runs (worker threads) without changing *what* is
        // computed: batch reports and final models must equal both the
        // simulated engine's and (transitively) the synchronous trainer's.
        let (dataset, targets, init) = tiny_setup();
        let train = TrainConfig::default();
        let mut threaded = ThreadedBackend::new(
            init.clone(),
            train.clone(),
            ThreadedConfig {
                prefetch_window: 2,
                ..Default::default()
            },
        );
        let mut engine = PipelinedEngine::new(init, train, runtime_config(2));
        for start in [0usize, 4] {
            let cams = &dataset.cameras[start..start + 4];
            let tgts = &targets[start..start + 4];
            let t = threaded.run_batch(cams, tgts);
            let s = engine.run_batch(cams, tgts);
            assert_eq!(t.batch, s.batch);
            assert_eq!(t.prefetch_window, 2);
            assert!(t.wall_seconds > 0.0);
        }
        assert_eq!(threaded.trainer().model(), engine.trainer().model());
        // Both backends account identical PCIe traffic for the batch.
        assert_eq!(
            threaded.trainer().offloaded().bytes_gathered(),
            engine.trainer().offloaded().bytes_gathered()
        );
    }

    #[test]
    fn threaded_backend_runs_all_four_systems() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        for system in SystemKind::ALL {
            let train = TrainConfig {
                system,
                ..Default::default()
            };
            let mut threaded =
                ThreadedBackend::new(init.clone(), train.clone(), ThreadedConfig::default());
            let mut sync = Trainer::new(init.clone(), train);
            let report = threaded.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(report.batch, reference, "{system}");
            assert_eq!(threaded.trainer().model(), sync.model(), "{system}");
        }
    }

    #[test]
    fn threaded_pool_recycles_within_the_window_budget() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        for window in [0usize, 1, 2] {
            let mut threaded = ThreadedBackend::new(
                init.clone(),
                TrainConfig::default(),
                ThreadedConfig {
                    prefetch_window: window,
                    ..Default::default()
                },
            );
            threaded.run_batch(cams, tgts);
            threaded.run_batch(cams, tgts);
            let stats = threaded.pool_stats();
            assert_eq!(stats.outstanding, 0, "all buffers returned");
            assert_eq!(stats.acquires, 12, "one gather per micro-batch");
            assert!(
                stats.high_water_buffers <= window + 1,
                "window {window} must stay within its buffer budget: {stats:?}"
            );
            assert!(stats.recycled >= 6, "window {window}: {stats:?}");
            // The gather and packed-Adam paths stage straight from the
            // lane-chunked layout into pool buffers — zero extra copies, so
            // no acquire may allocate once the frontier is provisioned.
            assert_eq!(
                stats.allocated, stats.high_water_buffers as u64,
                "window {window} allocated beyond the frontier: {stats:?}"
            );
        }
    }

    #[test]
    fn adaptive_policy_changes_window_not_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut fixed =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        let mut adaptive = PipelinedEngine::new(
            init.clone(),
            TrainConfig::default(),
            RuntimeConfig {
                prefetch_window: 2,
                policy: PrefetchPolicy::Adaptive { min: 1, max: 8 },
                // Paper-scale costing puts the schedule in the
                // bandwidth-bound regime, where the adaptive policy should
                // pick a non-trivial window.
                cost_scale: 1000.0,
                ..Default::default()
            },
        );
        let mut windows = Vec::new();
        for _ in 0..3 {
            let f = fixed.run_batch(cams, tgts);
            let a = adaptive.run_batch(cams, tgts);
            assert_eq!(f.batch, a.batch, "adaptive window must not change numerics");
            assert!(a.prefetch_window >= 1 && a.prefetch_window <= 8);
            windows.push(a.prefetch_window);
        }
        assert_eq!(windows[0], 2, "first batch uses the configured seed window");
        assert_eq!(fixed.trainer().model(), adaptive.trainer().model());
    }

    #[test]
    fn parallel_compute_threads_keep_backends_bit_identical() {
        // The banded compute lane is pure scheduling in every backend: the
        // threaded backend at 4 band threads and the simulated engine at 3
        // must match the serial threaded backend bit for bit.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let train = TrainConfig::default();
        let mut serial = ThreadedBackend::new(
            init.clone(),
            train.clone(),
            ThreadedConfig {
                prefetch_window: 2,
                ..Default::default()
            },
        );
        let mut parallel = ThreadedBackend::new(
            init.clone(),
            train.clone(),
            ThreadedConfig {
                prefetch_window: 2,
                compute_threads: 4,
                ..Default::default()
            },
        );
        let mut sim_parallel = PipelinedEngine::new(
            init,
            train,
            RuntimeConfig {
                compute_threads: 3,
                ..runtime_config(2)
            },
        );
        assert_eq!(parallel.trainer().config().compute_threads, 4);
        for _ in 0..2 {
            let a = serial.run_batch(cams, tgts);
            let b = parallel.run_batch(cams, tgts);
            let c = sim_parallel.run_batch(cams, tgts);
            assert_eq!(a.batch, b.batch);
            assert_eq!(a.batch, c.batch);
        }
        assert_eq!(serial.trainer().model(), parallel.trainer().model());
        assert_eq!(serial.trainer().model(), sim_parallel.trainer().model());
    }

    #[test]
    fn ewma_policy_changes_window_not_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut fixed =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        let mut ewma = PipelinedEngine::new(
            init.clone(),
            TrainConfig::default(),
            RuntimeConfig {
                prefetch_window: 2,
                policy: PrefetchPolicy::Ewma {
                    alpha: 0.3,
                    min: 1,
                    max: 8,
                },
                cost_scale: 1000.0,
                ..Default::default()
            },
        );
        for _ in 0..3 {
            let f = fixed.run_batch(cams, tgts);
            let e = ewma.run_batch(cams, tgts);
            assert_eq!(f.batch, e.batch, "EWMA window must not change numerics");
            assert!(e.prefetch_window >= 1 && e.prefetch_window <= 8);
        }
        assert_eq!(fixed.trainer().model(), ewma.trainer().model());
    }

    #[test]
    fn execution_backend_trait_drives_both_backends() {
        let (dataset, targets, init) = tiny_setup();
        let train = TrainConfig {
            batch_size: 4,
            ..Default::default()
        };
        let mut backends: Vec<Box<dyn ExecutionBackend>> = vec![
            Box::new(PipelinedEngine::new(
                init.clone(),
                train.clone(),
                RuntimeConfig::default(),
            )),
            Box::new(ThreadedBackend::new(init, train, ThreadedConfig::default())),
        ];
        let mut models = Vec::new();
        for backend in &mut backends {
            let reports = backend.execute_epoch(&dataset, &targets);
            let views: usize = reports.iter().map(|r| r.views).sum();
            assert_eq!(views, dataset.cameras.len(), "{}", backend.backend_name());
            for r in &reports {
                assert!(r.wall_seconds > 0.0);
                assert!(r.throughput() > 0.0);
                assert!(r.lanes.compute > 0.0, "{}", backend.backend_name());
            }
            // The simulated backend reports a device-time makespan; the
            // threaded backend measures instead.
            match backend.backend_name() {
                "simulated" => assert!(reports[0].sim_makespan.is_some()),
                "threaded" => assert!(reports[0].sim_makespan.is_none()),
                other => panic!("unexpected backend {other}"),
            }
            models.push(backend.trainer().model().clone());
        }
        assert_eq!(models[0], models[1], "backends agree on the numerics");
    }

    #[test]
    fn sharded_single_device_reproduces_the_pipelined_schedule_exactly() {
        // num_devices = 1 must degenerate to the single-device engine in
        // every observable way: numerics, makespan, per-lane busy times and
        // pinned-pool behaviour.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let train = TrainConfig::default();
        let mut sharded = ShardedEngine::new(
            init.clone(),
            train.clone(),
            runtime_config(2),
            &dataset.cameras,
        );
        let mut engine = PipelinedEngine::new(init, train, runtime_config(2));
        for _ in 0..2 {
            let s = sharded.run_batch(cams, tgts);
            let p = engine.run_batch(cams, tgts);
            assert_eq!(s.batch, p.batch);
            assert!((s.makespan() - p.makespan()).abs() < 1e-15, "same schedule");
            for lane in Lane::ALL {
                assert!(
                    (s.timeline.busy_time(lane) - p.timeline.busy_time(lane)).abs() < 1e-15,
                    "{lane:?}"
                );
            }
        }
        assert_eq!(sharded.trainer().model(), engine.trainer().model());
        assert_eq!(sharded.pool_stats(), engine.pool_stats());
        assert_eq!(sharded.cross_shard_rows(), 0, "one device owns everything");
    }

    #[test]
    fn sharded_devices_overlap_compute_across_lane_groups() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let makespan_of = |devices: usize| {
            let mut engine = ShardedEngine::new(
                init.clone(),
                TrainConfig::default(),
                RuntimeConfig {
                    num_devices: devices,
                    // Paper-scale costing so the schedule is dominated by
                    // simulated device time, not constant offsets.
                    cost_scale: 1000.0,
                    ..runtime_config(2)
                },
                &dataset.cameras,
            );
            engine.run_batch(cams, tgts).makespan()
        };
        let one = makespan_of(1);
        let two = makespan_of(2);
        assert!(
            two < one,
            "two device lane groups must shorten the schedule: {two} vs {one}"
        );
    }

    #[test]
    fn threaded_sharded_rounds_match_the_serial_backend() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let train = TrainConfig::default();
        let mut serial =
            ThreadedBackend::new(init.clone(), train.clone(), ThreadedConfig::default());
        let mut sharded = ThreadedBackend::new(
            init.clone(),
            train,
            ThreadedConfig {
                num_devices: 3,
                ..Default::default()
            },
        );
        assert_eq!(sharded.trainer().config().num_devices, 3);
        for _ in 0..2 {
            let a = serial.run_batch(cams, tgts);
            let b = sharded.run_batch(cams, tgts);
            assert_eq!(a.batch, b.batch);
            // The round needs D buffers in flight: the window is floored.
            assert!(b.prefetch_window >= 2);
        }
        assert_eq!(serial.trainer().model(), sharded.trainer().model());
    }

    #[test]
    fn warm_started_ewma_adapts_on_the_first_batch() {
        // The per-scene warm start closes PR 3's leftover: a run seeded
        // with a previously recorded fetch/compute ratio must not fall
        // back to the configured seed window on its first batch.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let config = |warm: Option<f64>| RuntimeConfig {
            prefetch_window: 2,
            policy: PrefetchPolicy::Ewma {
                alpha: 0.3,
                min: 1,
                max: 8,
            },
            cost_scale: 1000.0,
            warm_start_ratio: warm,
            ..Default::default()
        };
        let mut cold = PipelinedEngine::new(init.clone(), TrainConfig::default(), config(None));
        let first_cold = cold.run_batch(cams, tgts);
        assert_eq!(first_cold.prefetch_window, 2, "cold start uses the seed");

        // Record the trained ratio per scene and warm-start a fresh engine.
        let mut cache = WarmStartCache::new();
        assert!(cache.record("bicycle-tiny", cold.window_selector()));
        let mut warm = PipelinedEngine::new(
            init.clone(),
            TrainConfig::default(),
            config(cache.ratio("bicycle-tiny")),
        );
        let first_warm = warm.run_batch(cams, tgts);
        let expected = PrefetchPolicy::Ewma {
            alpha: 0.3,
            min: 1,
            max: 8,
        }
        .choose_window(2, cache.ratio("bicycle-tiny"));
        assert_eq!(
            first_warm.prefetch_window, expected,
            "warm start adapts the first batch"
        );
        // Warm starts are pure scheduling.
        assert_eq!(first_cold.batch, first_warm.batch);
    }

    #[test]
    fn fault_injection_changes_schedule_never_numerics() {
        use sim_device::{FaultPlan, FaultSpec};
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut clean =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        let mut faulted =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        faulted.install_fault_plan(FaultPlan::new(
            FaultSpec::new(11)
                .with_transients(0.5, 16)
                .with_straggler(Lane::GpuComm, 3.0, 4),
        ));
        for _ in 0..2 {
            let c = clean.run_batch(cams, tgts);
            let f = faulted.run_batch(cams, tgts);
            assert_eq!(c.batch, f.batch, "faults must never touch numerics");
            assert!(
                f.makespan() > c.makespan(),
                "retries and straggles must cost schedule time"
            );
        }
        assert_eq!(clean.trainer().model(), faulted.trainer().model());
        let stats = faulted.fault_plan().unwrap().stats();
        assert!(stats.transients > 0, "rate 0.5 must have struck: {stats:?}");
        assert!(stats.straggled_ops > 0, "straggler must have fired");
        assert!(stats.backoff_seconds > 0.0);
    }

    #[test]
    fn staging_exhaustion_denials_surface_in_pool_and_report() {
        use sim_device::{FaultPlan, FaultSpec};
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut clean =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        let mut starved =
            PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(2));
        starved.install_fault_plan(FaultPlan::new(
            FaultSpec::new(0).with_staging_exhaustion(1, 2),
        ));
        let c = clean.run_batch(cams, tgts);
        let s = starved.run_batch(cams, tgts);
        assert_eq!(
            c.batch, s.batch,
            "denied leases retry, content is identical"
        );
        assert_eq!(s.faults.exhaustion_denials, 2);
        assert_eq!(starved.pool_stats().denied, 2);
        assert_eq!(clean.pool_stats().denied, 0);
        assert!(
            s.makespan() > c.makespan(),
            "each denial stalls one backoff interval"
        );
        assert_eq!(clean.trainer().model(), starved.trainer().model());
    }

    #[test]
    fn threaded_faults_recover_bit_identically() {
        use sim_device::{FaultPlan, FaultSpec};
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let train = TrainConfig::default();
        let mut clean =
            ThreadedBackend::new(init.clone(), train.clone(), ThreadedConfig::default());
        let mut faulted = ThreadedBackend::new(init.clone(), train, ThreadedConfig::default());
        faulted.install_fault_plan(FaultPlan::new(
            FaultSpec::new(23)
                .with_transients(0.5, 16)
                .with_straggler(Lane::GpuComm, 2.0, 3)
                .with_staging_exhaustion(2, 1),
        ));
        for _ in 0..2 {
            let c = clean.run_batch(cams, tgts);
            let f = faulted.run_batch(cams, tgts);
            assert_eq!(c.batch, f.batch, "real re-execution must be pure");
        }
        assert_eq!(clean.trainer().model(), faulted.trainer().model());
        let stats = faulted.fault_plan().unwrap().stats();
        assert!(stats.transients > 0, "rate 0.5 must have struck: {stats:?}");
        assert!(stats.straggled_ops > 0);
        assert_eq!(stats.exhaustion_denials, 1);
        assert_eq!(faulted.pool_stats().denied, 1);
        assert_eq!(stats.aborts, 0, "no lane may have aborted");
    }

    #[test]
    fn sharded_device_loss_drains_repartitions_and_stays_bit_identical() {
        use sim_device::{FaultPlan, FaultSpec};
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let train = TrainConfig::default();
        // Loses 2 of 4 devices at the boundary before batch 1.
        let mut doomed = ShardedEngine::new(
            init.clone(),
            train.clone(),
            RuntimeConfig {
                num_devices: 4,
                ..runtime_config(2)
            },
            &dataset.cameras,
        );
        doomed.install_fault_plan(FaultPlan::new(FaultSpec::new(0).with_device_loss(1, 2)));
        // The reference trains at the survivor count throughout — the
        // trajectory is device-count-invariant, so the post-loss run must
        // land on exactly this model.
        let mut survivor = ShardedEngine::new(
            init.clone(),
            train,
            RuntimeConfig {
                num_devices: 2,
                ..runtime_config(2)
            },
            &dataset.cameras,
        );
        let mut losses = 0;
        for _ in 0..3 {
            let d = doomed.run_batch(cams, tgts);
            let s = survivor.run_batch(cams, tgts);
            assert_eq!(d.batch, s.batch, "loss boundary must not disturb numerics");
            losses += d.faults.device_losses;
        }
        assert_eq!(losses, 1, "the loss fires exactly once");
        assert_eq!(doomed.config().num_devices, 2, "survivors only");
        assert_eq!(doomed.trainer().config().num_devices, 2);
        assert_eq!(doomed.trainer().model(), survivor.trainer().model());
        assert_eq!(
            doomed.partition().device_counts().len(),
            2,
            "ownership repartitioned onto the survivors"
        );
    }

    #[test]
    #[should_panic(expected = "at least one survivor")]
    fn losing_every_device_panics() {
        let (dataset, _, init) = tiny_setup();
        let mut engine = ShardedEngine::new(
            init,
            TrainConfig::default(),
            RuntimeConfig {
                num_devices: 2,
                ..Default::default()
            },
            &dataset.cameras,
        );
        engine.lose_devices(2);
    }

    #[test]
    #[should_panic(expected = "use ShardedEngine")]
    fn pipelined_engine_rejects_multi_device_configs() {
        let (_, _, init) = tiny_setup();
        let _ = PipelinedEngine::new(
            init,
            TrainConfig::default(),
            RuntimeConfig {
                num_devices: 2,
                ..Default::default()
            },
        );
    }

    #[test]
    #[should_panic(expected = "cost_scale must be positive")]
    fn invalid_cost_scale_panics() {
        let (_, _, init) = tiny_setup();
        let _ = PipelinedEngine::new(
            init,
            TrainConfig::default(),
            RuntimeConfig {
                cost_scale: 0.0,
                ..Default::default()
            },
        );
    }
}
