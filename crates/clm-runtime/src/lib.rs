//! Pipelined execution engine for the CLM trainers.
//!
//! The seed reproduction kept two worlds apart: `clm_core::train` ran the
//! functional trainers fully synchronously, while `sim_device::Timeline`
//! modelled concurrent lanes nobody drove with real training.  This crate
//! bridges them: [`PipelinedEngine`] executes the four trainers as
//! discrete-event pipelines — prefetched parameter gathers on the `GpuComm`
//! lane ([`PrefetchWindow`]), forward/backward on `GpuCompute`, per-
//! transition gradient stores, and early-finalised CPU Adam on the
//! `CpuAdam` lane driven by `clm_core::FinalizationPlan` — while producing
//! exactly the synchronous trainer's numbers.
//!
//! * [`PinnedBufferPool`] — recycling pinned host staging buffers with
//!   high-water accounting (one buffer per prefetch slot);
//! * [`PrefetchWindow`] — the lookahead policy (0 = synchronous, 1 = double
//!   buffering, ≥ batch size = unconstrained);
//! * [`PipelinedEngine`] / [`RuntimeConfig`] — the engine itself;
//! * [`IterationReport`] — per-iteration makespan, per-lane busy/idle time
//!   and communication volume (Figures 11–15, Table 7).
//!
//! # Numerical equivalence
//!
//! The engine drives the trainer through the same
//! `plan_batch → begin_batch → stage → process → apply_finalized →
//! finish_batch` sequence the synchronous `Trainer::train_batch` uses, so
//! the loss/PSNR trajectory is identical by construction — the paper's core
//! claim that overlap changes *when* work runs, never *what* it computes.
//! `Trainer::process_microbatch` additionally asserts that prefetched rows
//! never go stale, validating the finalisation schedule's non-interference
//! guarantee.
//!
//! # Example
//!
//! ```
//! use clm_core::TrainConfig;
//! use clm_runtime::{PipelinedEngine, RuntimeConfig};
//! use gs_scene::{generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig,
//!                SceneKind, SceneSpec};
//! use sim_device::Lane;
//!
//! let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
//! let targets = clm_core::ground_truth_images(&dataset);
//! let init = init_from_point_cloud(
//!     &dataset.ground_truth,
//!     &InitConfig { num_gaussians: 100, ..Default::default() },
//! );
//! let mut engine = PipelinedEngine::new(init, TrainConfig::default(), RuntimeConfig::default());
//! let report = engine.run_batch(&dataset.cameras[..4], &targets[..4]);
//! assert!(report.makespan() > 0.0);
//! assert!(report.lane(Lane::GpuCompute).busy > 0.0);
//! ```

pub mod engine;
pub mod pool;
pub mod prefetch;
pub mod report;

pub use engine::{PipelinedEngine, RuntimeConfig};
pub use pool::{PinnedBufferPool, PoolStats, StagingBuffer};
pub use prefetch::PrefetchWindow;
pub use report::{IterationReport, LaneReport};

#[cfg(test)]
mod tests {
    use super::*;
    use clm_core::{SystemKind, TrainConfig, Trainer};
    use gs_core::gaussian::GaussianModel;
    use gs_render::Image;
    use gs_scene::{
        generate_dataset, init_from_point_cloud, Dataset, DatasetConfig, InitConfig, SceneKind,
        SceneSpec,
    };
    use sim_device::Lane;

    fn tiny_setup() -> (Dataset, Vec<Image>, GaussianModel) {
        let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
        let targets = clm_core::ground_truth_images(&dataset);
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 150,
                ..Default::default()
            },
        );
        (dataset, targets, init)
    }

    fn runtime_config(window: usize) -> RuntimeConfig {
        RuntimeConfig {
            prefetch_window: window,
            ..Default::default()
        }
    }

    #[test]
    fn pipelined_clm_matches_synchronous_trainer_exactly() {
        // The tentpole claim: pipelining changes the schedule, never the
        // numerics.  Same model, same losses, same traffic, same order.
        let (dataset, targets, init) = tiny_setup();
        let train = TrainConfig::default();
        let mut engine = PipelinedEngine::new(init.clone(), train.clone(), runtime_config(2));
        let mut sync = Trainer::new(init, train);
        for start in [0usize, 4] {
            let cams = &dataset.cameras[start..start + 4];
            let tgts = &targets[start..start + 4];
            let piped = engine.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(piped.batch, reference);
        }
        assert_eq!(engine.trainer().model(), sync.model());
    }

    #[test]
    fn prefetch_window_never_changes_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let mut reference: Option<(clm_core::BatchReport, GaussianModel)> = None;
        for window in [0usize, 1, 3, 64] {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            let report = engine.run_batch(cams, tgts);
            match &reference {
                None => reference = Some((report.batch, engine.trainer().model().clone())),
                Some((batch, model)) => {
                    assert_eq!(&report.batch, batch, "window {window}");
                    assert_eq!(engine.trainer().model(), model, "window {window}");
                }
            }
        }
    }

    #[test]
    fn wider_windows_reduce_gpu_compute_idle() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let idle_of = |window: usize| {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts).gpu_idle_fraction()
        };
        let synchronous = idle_of(0);
        let double_buffered = idle_of(1);
        let unconstrained = idle_of(64);
        assert!(
            double_buffered < synchronous,
            "double buffering must hide gathers: {double_buffered} vs {synchronous}"
        );
        assert!(
            unconstrained <= double_buffered + 1e-12,
            "wider windows never hurt: {unconstrained} vs {double_buffered}"
        );
    }

    #[test]
    fn pipelined_makespan_beats_synchronous_schedule() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let makespan_of = |window: usize| {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts).makespan()
        };
        assert!(makespan_of(2) < makespan_of(0));
    }

    #[test]
    fn staging_pool_recycles_and_respects_window_high_water() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        for window in [0usize, 1, 2] {
            let mut engine =
                PipelinedEngine::new(init.clone(), TrainConfig::default(), runtime_config(window));
            engine.run_batch(cams, tgts);
            engine.run_batch(cams, tgts);
            let stats = engine.pool_stats();
            assert_eq!(stats.outstanding, 0, "all buffers returned");
            assert_eq!(stats.acquires, 12, "one gather per micro-batch");
            assert_eq!(
                stats.high_water_buffers,
                window + 1,
                "window {window} needs window+1 staging buffers"
            );
            // The second batch runs entirely from recycled buffers.
            assert!(stats.recycled >= 6, "window {window}: {stats:?}");
        }
    }

    #[test]
    fn all_four_systems_execute_and_report() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        for system in SystemKind::ALL {
            let mut engine = PipelinedEngine::new(
                init.clone(),
                TrainConfig {
                    system,
                    ..Default::default()
                },
                RuntimeConfig::default(),
            );
            let report = engine.run_batch(cams, tgts);
            assert!(report.makespan() > 0.0, "{system}");
            assert!(report.lane(Lane::GpuCompute).busy > 0.0, "{system}");
            assert!(report.throughput() > 0.0, "{system}");
            match system {
                SystemKind::Baseline | SystemKind::EnhancedBaseline => {
                    assert_eq!(report.comm_bytes_h2d(), 0, "{system}");
                    assert_eq!(report.batch.bytes_loaded, 0, "{system}");
                }
                SystemKind::NaiveOffload | SystemKind::Clm => {
                    assert!(report.comm_bytes_h2d() > 0, "{system}");
                    assert!(report.lane(Lane::CpuAdam).busy > 0.0, "{system}");
                }
            }
        }
    }

    #[test]
    fn runtime_systems_match_their_synchronous_counterparts() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        for system in SystemKind::ALL {
            let train = TrainConfig {
                system,
                ..Default::default()
            };
            let mut engine =
                PipelinedEngine::new(init.clone(), train.clone(), RuntimeConfig::default());
            let mut sync = Trainer::new(init.clone(), train);
            let piped = engine.run_batch(cams, tgts);
            let reference = sync.train_batch(cams, tgts);
            assert_eq!(piped.batch, reference, "{system}");
            assert_eq!(engine.trainer().model(), sync.model(), "{system}");
        }
    }

    #[test]
    fn clm_timeline_traffic_matches_batch_accounting_at_unit_scale() {
        let (dataset, targets, init) = tiny_setup();
        let mut engine = PipelinedEngine::new(init, TrainConfig::default(), runtime_config(2));
        let report = engine.run_batch(&dataset.cameras[..5], &targets[..5]);
        assert_eq!(report.comm_bytes_h2d(), report.batch.bytes_loaded);
        assert_eq!(report.comm_bytes_d2h(), report.batch.bytes_stored);
    }

    #[test]
    fn cost_scale_changes_schedule_but_not_numerics() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let run = |cost_scale: f64| {
            let mut engine = PipelinedEngine::new(
                init.clone(),
                TrainConfig::default(),
                RuntimeConfig {
                    cost_scale,
                    ..runtime_config(2)
                },
            );
            let report = engine.run_batch(cams, tgts);
            (
                report.makespan(),
                report.batch,
                engine.trainer().model().clone(),
            )
        };
        let (makespan_1x, batch_1x, model_1x) = run(1.0);
        let (makespan_1000x, batch_1000x, model_1000x) = run(1000.0);
        assert!(makespan_1000x > makespan_1x * 100.0);
        assert_eq!(batch_1x, batch_1000x);
        assert_eq!(model_1x, model_1000x);
    }

    #[test]
    fn run_epoch_covers_every_view() {
        let (dataset, targets, init) = tiny_setup();
        let mut engine = PipelinedEngine::new(
            init,
            TrainConfig {
                batch_size: 4,
                ..Default::default()
            },
            RuntimeConfig::default(),
        );
        let reports = engine.run_epoch(&dataset, &targets);
        let views: usize = reports.iter().map(|r| r.views).sum();
        assert_eq!(views, dataset.cameras.len());
        assert!(reports.iter().all(|r| r.makespan() > 0.0));
    }

    #[test]
    #[should_panic(expected = "cost_scale must be positive")]
    fn invalid_cost_scale_panics() {
        let (_, _, init) = tiny_setup();
        let _ = PipelinedEngine::new(
            init,
            TrainConfig::default(),
            RuntimeConfig {
                cost_scale: 0.0,
                ..Default::default()
            },
        );
    }
}
