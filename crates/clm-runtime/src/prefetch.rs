//! Prefetch scheduling over the ordered micro-batch stream.
//!
//! CLM hides parameter gathers behind compute by issuing them ahead of the
//! micro-batch that needs them (Figure 6).  How far ahead is the *lookahead
//! window* `W`: while micro-batch `i` computes, the gathers for micro-batches
//! `i+1 ..= i+W` may be in flight on the communication stream, which requires
//! `W + 1` staging buffers (double buffering is `W = 1`).
//!
//! [`PrefetchWindow`] captures the resulting dependence structure as pure
//! index arithmetic so the engine and the tests share one definition:
//!
//! * `W = 0` degenerates to the synchronous schedule — every gather waits
//!   for the previous micro-batch's compute, so communication never
//!   overlaps compute;
//! * `W ≥ m − 1` (window at least the batch size) leaves every gather
//!   unconstrained by compute; the communication lane's own serialisation is
//!   the only limit.

/// How the runtime picks the prefetch lookahead window for each batch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PrefetchPolicy {
    /// Always use the configured `prefetch_window`.
    #[default]
    Fixed,
    /// Derive the window from the measured fetch/compute ratio of the
    /// previous batch, clamped to `[min, max]`: hiding one micro-batch's
    /// gather needs roughly `fetch_time / compute_time` micro-batches of
    /// compute in flight.  The first batch (no measurement yet) uses the
    /// configured fixed window, clamped to the same range.
    Adaptive {
        /// Smallest window the policy may choose.
        min: usize,
        /// Largest window the policy may choose.
        max: usize,
    },
    /// Like [`Adaptive`](Self::Adaptive), but derives the window from an
    /// exponentially-weighted moving average of the fetch/compute ratio
    /// instead of the last batch alone: after each batch the tracked ratio
    /// becomes `alpha * measured + (1 - alpha) * previous`.  A small
    /// `alpha` makes the window robust against one-batch spikes (a stray
    /// slow gather or a preempted compute thread) that would whipsaw the
    /// staging-buffer budget under `Adaptive`.
    Ewma {
        /// Smoothing factor in `(0, 1]`; 1 degenerates to `Adaptive`.
        alpha: f64,
        /// Smallest window the policy may choose.
        min: usize,
        /// Largest window the policy may choose.
        max: usize,
    },
}

impl PrefetchPolicy {
    /// Chooses the window for the next batch.  `fixed` is the configured
    /// `prefetch_window`; `tracked_ratio` is the policy's tracked
    /// `fetch_time / compute_time` — the previous batch's measurement for
    /// [`Adaptive`](Self::Adaptive), the smoothed average for
    /// [`Ewma`](Self::Ewma) (`None` before the first batch).
    ///
    /// The choice never affects numerics — only how far ahead gathers may
    /// run (and therefore how many staging buffers are live).
    pub fn choose_window(&self, fixed: usize, tracked_ratio: Option<f64>) -> usize {
        match *self {
            PrefetchPolicy::Fixed => fixed,
            PrefetchPolicy::Adaptive { min, max } | PrefetchPolicy::Ewma { min, max, .. } => {
                let max = max.max(min);
                match tracked_ratio {
                    None => fixed.clamp(min, max),
                    Some(r) => (r.max(0.0).ceil() as usize).clamp(min, max),
                }
            }
        }
    }
}

/// Per-backend state of the window choice: remembers the previous batch's
/// fetch/compute ratio (and its EWMA) so [`PrefetchPolicy::Adaptive`] and
/// [`PrefetchPolicy::Ewma`] have a measurement to work from.  Both backends
/// (simulated and threaded) drive the same `choose → observe` cycle through
/// this one type, so a policy change cannot silently diverge between them.
#[derive(Debug, Clone, Copy, Default)]
pub struct WindowSelector {
    last_fetch_compute_ratio: Option<f64>,
    smoothed_fetch_compute_ratio: Option<f64>,
}

impl WindowSelector {
    /// Creates a selector with no measurement yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a selector warm-started from a previously observed
    /// fetch/compute ratio (e.g. a [`WarmStartCache`] entry recorded by an
    /// earlier run on the same scene), so [`PrefetchPolicy::Adaptive`] and
    /// [`PrefetchPolicy::Ewma`] pick an adapted window on the **first**
    /// batch instead of falling back to the configured seed window.
    ///
    /// Non-finite or negative ratios (and `None`) cold-start like
    /// [`new`](Self::new).
    pub fn warm_started(ratio: Option<f64>) -> Self {
        match ratio {
            Some(r) if r.is_finite() && r >= 0.0 => WindowSelector {
                last_fetch_compute_ratio: Some(r),
                smoothed_fetch_compute_ratio: Some(r),
            },
            _ => Self::default(),
        }
    }

    /// Chooses the window for the next batch under `policy`.
    pub fn choose(&self, policy: PrefetchPolicy, fixed: usize) -> usize {
        let tracked = match policy {
            PrefetchPolicy::Ewma { .. } => self.smoothed_fetch_compute_ratio,
            _ => self.last_fetch_compute_ratio,
        };
        policy.choose_window(fixed, tracked)
    }

    /// Records one batch's fetch and compute lane times (simulated device
    /// seconds or measured thread-busy seconds — only their ratio matters)
    /// under `policy`, updating both the raw last-batch ratio and, for
    /// [`PrefetchPolicy::Ewma`], the smoothed average.  Ignored when the
    /// batch had no measurable compute.
    pub fn observe(&mut self, policy: PrefetchPolicy, fetch_seconds: f64, compute_seconds: f64) {
        if compute_seconds <= 0.0 {
            return;
        }
        let ratio = fetch_seconds / compute_seconds;
        self.last_fetch_compute_ratio = Some(ratio);
        self.smoothed_fetch_compute_ratio = match (policy, self.smoothed_fetch_compute_ratio) {
            (PrefetchPolicy::Ewma { alpha, .. }, Some(prev)) => {
                // Clamp into the documented (0, 1] domain: alpha = 0 would
                // freeze the average at its first observation forever, so a
                // sustained regime shift could never widen the window.
                let alpha = alpha.clamp(1e-6, 1.0);
                Some(alpha * ratio + (1.0 - alpha) * prev)
            }
            // First measurement (or a non-EWMA policy): seed the average
            // with the raw ratio so switching policies mid-run stays sane.
            _ => Some(ratio),
        };
    }

    /// The most recent fetch/compute ratio, if any batch has been observed.
    pub fn last_ratio(&self) -> Option<f64> {
        self.last_fetch_compute_ratio
    }

    /// The EWMA-smoothed fetch/compute ratio, if any batch has been
    /// observed.
    pub fn smoothed_ratio(&self) -> Option<f64> {
        self.smoothed_fetch_compute_ratio
    }
}

/// One run's tuned knob values, recorded per (host fingerprint, scene) by
/// [`WarmStartCache::record_tuning`].  A later run on the **same** host and
/// scene seeds its configs from the record; a different host (new
/// fingerprint) falls back to autotuning from scratch, because cache sizes
/// and core counts — the inputs the knobs were derived from — differ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TuningRecord {
    /// Smoothed fetch/compute ratio at the end of the run (the classic
    /// per-scene warm start).
    pub ratio: f64,
    /// Banded-render workers the run settled on.
    pub compute_threads: usize,
    /// CPU Adam lane fan-out the run settled on.
    pub adam_threads: usize,
    /// Accumulation band height the run used.
    pub band_height: u32,
    /// Prefetch window the run converged to.
    pub prefetch_window: usize,
}

/// Per-scene warm starts for the tracked prefetch ratio, plus per-(host,
/// scene) tuning records.
///
/// `PrefetchPolicy::Ewma` used to cold-start every run: the first batch of a
/// scene always fell back to the configured seed window, even when the same
/// scene had just been trained and its steady-state fetch/compute ratio was
/// known.  The cache closes that loop: after a run, record the backend's
/// [`WindowSelector`] under the scene's label; before the next run on that
/// scene, seed the backend with the stored ratio
/// (`RuntimeConfig::warm_start_ratio` / `ThreadedConfig::warm_start_ratio`),
/// and the first batch starts from the smoothed steady state instead of the
/// seed window.  Warm starts never change numerics — only the first batch's
/// staging-buffer budget.
///
/// Tuning records extend the same idea to the autotuned knobs: keyed by
/// `(HostTopology::fingerprint(), scene)`, so a cache file copied to a
/// different machine is silently ignored (fingerprint mismatch → autotune
/// from scratch) instead of applying another host's thread counts.
///
/// The cache persists as a versioned tab-separated text file
/// ([`save_to_string`](Self::save_to_string) /
/// [`load_from_str`](Self::load_from_str)); legacy headerless
/// `scene\tratio` files load as ratio-only entries, and malformed lines are
/// skipped rather than failing the load — a corrupt cache degrades to a
/// cold start, never an error.
#[derive(Debug, Clone, Default)]
pub struct WarmStartCache {
    ratios: std::collections::HashMap<String, f64>,
    records: std::collections::HashMap<(String, String), TuningRecord>,
}

/// Header line of the current cache file format.
const WARM_CACHE_HEADER_V2: &str = "clmwarm v2";

impl WarmStartCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `selector`'s smoothed fetch/compute ratio under `scene`.
    /// Returns `false` (leaving any previous entry in place) when the
    /// selector has not observed a batch yet.
    pub fn record(&mut self, scene: &str, selector: &WindowSelector) -> bool {
        match selector.smoothed_ratio() {
            Some(r) if r.is_finite() => {
                self.ratios.insert(scene.to_string(), r);
                true
            }
            _ => false,
        }
    }

    /// The stored warm-start ratio for `scene`, if any — pass it to the
    /// backend config's `warm_start_ratio`.  Falls back to the freshest
    /// source available: a per-(host, scene) tuning record's ratio wins over
    /// the plain per-scene entry when `host` has one.
    pub fn ratio(&self, scene: &str) -> Option<f64> {
        self.ratios.get(scene).copied()
    }

    /// Records a full tuning record under `(host, scene)` — `host` should
    /// be `HostTopology::fingerprint()`.  Returns `false` (leaving any
    /// previous entry in place) when the record is degenerate: a non-finite
    /// or negative ratio, or zero thread/band values.
    pub fn record_tuning(&mut self, host: &str, scene: &str, record: TuningRecord) -> bool {
        let sane = record.ratio.is_finite()
            && record.ratio >= 0.0
            && record.compute_threads > 0
            && record.adam_threads > 0
            && record.band_height > 0
            && record.prefetch_window > 0;
        if !sane {
            return false;
        }
        self.records
            .insert((host.to_string(), scene.to_string()), record);
        true
    }

    /// The tuning record for `(host, scene)`, if one was recorded **on this
    /// host** — a record from a different fingerprint is never returned, so
    /// stale thread counts cannot leak across machines.  Callers fall back
    /// to [`ratio`](Self::ratio) (and from there to autotuning) on `None`.
    pub fn tuning(&self, host: &str, scene: &str) -> Option<TuningRecord> {
        self.records
            .get(&(host.to_string(), scene.to_string()))
            .copied()
    }

    /// Number of entries (per-scene ratios plus per-(host, scene) tuning
    /// records).
    pub fn len(&self) -> usize {
        self.ratios.len() + self.records.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ratios.is_empty() && self.records.is_empty()
    }

    /// Serialises the cache into the versioned tab-separated text format.
    /// Entries are emitted in sorted key order so the output is stable.
    pub fn save_to_string(&self) -> String {
        let mut out = String::from(WARM_CACHE_HEADER_V2);
        out.push('\n');
        let mut scenes: Vec<_> = self.ratios.iter().collect();
        scenes.sort_by(|a, b| a.0.cmp(b.0));
        for (scene, ratio) in scenes {
            out.push_str(&format!("ratio\t{}\t{}\n", sanitize(scene), ratio));
        }
        let mut tuned: Vec<_> = self.records.iter().collect();
        tuned.sort_by(|a, b| a.0.cmp(b.0));
        for ((host, scene), r) in tuned {
            out.push_str(&format!(
                "tuned\t{}\t{}\t{}\t{}\t{}\t{}\t{}\n",
                sanitize(host),
                sanitize(scene),
                r.ratio,
                r.compute_threads,
                r.adam_threads,
                r.band_height,
                r.prefetch_window,
            ));
        }
        out
    }

    /// Parses a cache from its text form.  Accepts the current `clmwarm v2`
    /// format and legacy headerless `scene\tratio` files; lines that fail
    /// to parse (truncated writes, corruption, future record kinds) are
    /// skipped, so the worst case is a partially warm — never broken —
    /// cache.
    pub fn load_from_str(text: &str) -> Self {
        let mut cache = WarmStartCache::new();
        for line in text.lines() {
            let line = line.trim_end();
            if line.is_empty() || line == WARM_CACHE_HEADER_V2 || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                ["ratio", scene, value] => {
                    if let Ok(r) = value.parse::<f64>() {
                        if r.is_finite() && r >= 0.0 {
                            cache.ratios.insert((*scene).to_string(), r);
                        }
                    }
                }
                ["tuned", host, scene, ratio, ct, at, bh, pw] => {
                    let parsed = (
                        ratio.parse::<f64>(),
                        ct.parse::<usize>(),
                        at.parse::<usize>(),
                        bh.parse::<u32>(),
                        pw.parse::<usize>(),
                    );
                    if let (
                        Ok(ratio),
                        Ok(compute_threads),
                        Ok(adam_threads),
                        Ok(band_height),
                        Ok(prefetch_window),
                    ) = parsed
                    {
                        cache.record_tuning(
                            host,
                            scene,
                            TuningRecord {
                                ratio,
                                compute_threads,
                                adam_threads,
                                band_height,
                                prefetch_window,
                            },
                        );
                    }
                }
                // Legacy (pre-v2) files: bare `scene\tratio` lines.
                [scene, value] => {
                    if let Ok(r) = value.parse::<f64>() {
                        if r.is_finite() && r >= 0.0 {
                            cache.ratios.insert((*scene).to_string(), r);
                        }
                    }
                }
                _ => {}
            }
        }
        cache
    }

    /// Writes the cache to `path` (see [`save_to_string`](Self::save_to_string)).
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.save_to_string())
    }

    /// Loads a cache from `path`; a missing or unreadable file yields an
    /// empty cache (cold start), matching the corruption policy of
    /// [`load_from_str`](Self::load_from_str).
    pub fn load(path: &std::path::Path) -> Self {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::load_from_str(&text),
            Err(_) => WarmStartCache::new(),
        }
    }
}

/// Keeps keys single-field in the tab-separated format.
fn sanitize(key: &str) -> String {
    key.replace(['\t', '\n', '\r'], " ")
}

/// Lookahead-window policy for one batch of `num_microbatches` gathers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefetchWindow {
    window: usize,
    num_microbatches: usize,
}

impl PrefetchWindow {
    /// Creates the policy for a batch.
    pub fn new(window: usize, num_microbatches: usize) -> Self {
        PrefetchWindow {
            window,
            num_microbatches,
        }
    }

    /// The configured lookahead.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Index of the micro-batch whose **compute must have finished** before
    /// the gather of micro-batch `i` may start, or `None` if the gather is
    /// unconstrained (it only waits for the communication lane itself).
    ///
    /// The gather for micro-batch `i` may overlap the compute of
    /// micro-batches `i - window .. i`, so it must wait for micro-batch
    /// `i - window - 1`.
    pub fn gather_depends_on_compute_of(&self, i: usize) -> Option<usize> {
        debug_assert!(i < self.num_microbatches);
        i.checked_sub(self.window.saturating_add(1))
    }

    /// Number of staging buffers the schedule needs: one per micro-batch
    /// that may be gathered but not yet consumed (`window + 1`, capped by
    /// the batch size).
    pub fn staging_buffers(&self) -> usize {
        self.window
            .saturating_add(1)
            .min(self.num_microbatches.max(1))
    }

    /// Micro-batches whose gathers should be issued once micro-batch
    /// `completed` has finished computing (`None` = batch start): the next
    /// contiguous run of gathers the window admits.
    ///
    /// At batch start this is `0 ..= window`; after micro-batch `j`
    /// completes it is `j + window + 1` alone — the slot its completion
    /// freed.
    pub fn issuable_after(&self, completed: Option<usize>) -> std::ops::Range<usize> {
        match completed {
            None => 0..self.window.saturating_add(1).min(self.num_microbatches),
            Some(j) => {
                let next = j.saturating_add(self.window).saturating_add(1);
                next.min(self.num_microbatches)..next.saturating_add(1).min(self.num_microbatches)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_zero_is_synchronous() {
        // Every gather after the first waits for the immediately preceding
        // compute: no communication/compute overlap at all.
        let w = PrefetchWindow::new(0, 5);
        assert_eq!(w.gather_depends_on_compute_of(0), None);
        for i in 1..5 {
            assert_eq!(w.gather_depends_on_compute_of(i), Some(i - 1));
        }
        assert_eq!(w.staging_buffers(), 1);
        assert_eq!(w.issuable_after(None), 0..1);
        assert_eq!(w.issuable_after(Some(2)), 3..4);
    }

    #[test]
    fn double_buffering_is_window_one() {
        let w = PrefetchWindow::new(1, 6);
        assert_eq!(w.gather_depends_on_compute_of(0), None);
        assert_eq!(w.gather_depends_on_compute_of(1), None);
        assert_eq!(w.gather_depends_on_compute_of(2), Some(0));
        assert_eq!(w.gather_depends_on_compute_of(5), Some(3));
        assert_eq!(w.staging_buffers(), 2);
        assert_eq!(w.issuable_after(None), 0..2);
        assert_eq!(w.issuable_after(Some(0)), 2..3);
    }

    #[test]
    fn window_at_least_batch_size_never_blocks_on_compute() {
        for window in [7, 8, 100, usize::MAX - 1] {
            let w = PrefetchWindow::new(window, 8);
            for i in 0..8 {
                assert_eq!(
                    w.gather_depends_on_compute_of(i),
                    None,
                    "window {window}, micro {i}"
                );
            }
            assert_eq!(w.staging_buffers(), 8, "buffers capped by batch size");
            assert_eq!(w.issuable_after(None), 0..8);
            // Completions free no further slots: everything was issued at
            // batch start.
            assert_eq!(w.issuable_after(Some(0)), 8..8);
        }
    }

    #[test]
    fn issuable_ranges_cover_each_gather_exactly_once() {
        for window in 0..6 {
            for m in 1..7 {
                let w = PrefetchWindow::new(window, m);
                let mut issued = vec![0usize; m];
                for i in w.issuable_after(None) {
                    issued[i] += 1;
                }
                for j in 0..m {
                    for i in w.issuable_after(Some(j)) {
                        issued[i] += 1;
                    }
                }
                assert_eq!(
                    issued,
                    vec![1; m],
                    "window {window}, batch {m}: every gather issued exactly once"
                );
            }
        }
    }

    #[test]
    fn adaptive_policy_tracks_the_fetch_compute_ratio() {
        let p = PrefetchPolicy::Adaptive { min: 1, max: 6 };
        // No measurement yet: fall back to the configured window, clamped.
        assert_eq!(p.choose_window(2, None), 2);
        assert_eq!(p.choose_window(0, None), 1);
        assert_eq!(p.choose_window(64, None), 6);
        // Compute-bound batches need almost no lookahead…
        assert_eq!(p.choose_window(2, Some(0.05)), 1);
        // …balanced batches need ~1, bandwidth-bound batches need more.
        assert_eq!(p.choose_window(2, Some(1.0)), 1);
        assert_eq!(p.choose_window(2, Some(2.3)), 3);
        assert_eq!(p.choose_window(2, Some(50.0)), 6);
        // Degenerate ratios stay in range.
        assert_eq!(p.choose_window(2, Some(-3.0)), 1);
        // Fixed policy ignores measurements entirely.
        assert_eq!(PrefetchPolicy::Fixed.choose_window(4, Some(9.0)), 4);
    }

    #[test]
    fn window_selector_drives_the_choose_observe_cycle() {
        let policy = PrefetchPolicy::Adaptive { min: 1, max: 6 };
        let mut sel = WindowSelector::new();
        assert_eq!(sel.last_ratio(), None);
        assert_eq!(sel.choose(policy, 2), 2, "seed window before measurements");
        sel.observe(policy, 3.0, 1.0);
        assert_eq!(sel.last_ratio(), Some(3.0));
        assert_eq!(sel.choose(policy, 2), 3);
        // Zero compute leaves the previous measurement in place.
        sel.observe(policy, 5.0, 0.0);
        assert_eq!(sel.last_ratio(), Some(3.0));
    }

    #[test]
    fn ewma_policy_smooths_a_one_batch_spike_away() {
        // The satellite claim: under EWMA a single anomalous batch must not
        // flip the chosen window, while the purely reactive policy jumps.
        let ewma = PrefetchPolicy::Ewma {
            alpha: 0.1,
            min: 1,
            max: 8,
        };
        let adaptive = PrefetchPolicy::Adaptive { min: 1, max: 8 };
        let mut sel = WindowSelector::new();
        // A steady compute-bound phase: ratio 0.5 → window 1.
        for _ in 0..4 {
            sel.observe(ewma, 0.5, 1.0);
        }
        assert_eq!(sel.choose(ewma, 2), 1);
        // One-batch spike (gather 4× slower than compute).
        sel.observe(ewma, 4.0, 1.0);
        assert_eq!(sel.last_ratio(), Some(4.0));
        assert_eq!(
            sel.choose(adaptive, 2),
            4,
            "the reactive policy whipsaws on the spike"
        );
        assert_eq!(
            sel.choose(ewma, 2),
            1,
            "the smoothed policy must not flip the window on one batch"
        );
        // Back to steady state: the average keeps tracking.
        sel.observe(ewma, 0.5, 1.0);
        assert_eq!(sel.choose(ewma, 2), 1);
        // A *sustained* shift does eventually move the window.
        for _ in 0..40 {
            sel.observe(ewma, 4.0, 1.0);
        }
        assert!(
            sel.choose(ewma, 2) >= 3,
            "sustained shifts must get through"
        );
    }

    #[test]
    fn ewma_choose_window_clamps_like_adaptive() {
        let p = PrefetchPolicy::Ewma {
            alpha: 0.3,
            min: 1,
            max: 6,
        };
        assert_eq!(p.choose_window(2, None), 2);
        assert_eq!(p.choose_window(0, None), 1);
        assert_eq!(p.choose_window(64, None), 6);
        assert_eq!(p.choose_window(2, Some(0.05)), 1);
        assert_eq!(p.choose_window(2, Some(2.3)), 3);
        assert_eq!(p.choose_window(2, Some(50.0)), 6);
        assert_eq!(p.choose_window(2, Some(-3.0)), 1);
    }

    #[test]
    fn warm_started_selector_adapts_on_the_first_batch() {
        let ewma = PrefetchPolicy::Ewma {
            alpha: 0.2,
            min: 1,
            max: 8,
        };
        // Cold start: the first choice is the seed window.
        assert_eq!(WindowSelector::new().choose(ewma, 2), 2);
        // Warm start: the first choice already reflects the stored ratio.
        let warm = WindowSelector::warm_started(Some(3.4));
        assert_eq!(warm.choose(ewma, 2), 4);
        assert_eq!(warm.smoothed_ratio(), Some(3.4));
        assert_eq!(
            warm.choose(PrefetchPolicy::Adaptive { min: 1, max: 8 }, 2),
            4
        );
        // Degenerate seeds cold-start instead of poisoning the average.
        for bad in [None, Some(f64::NAN), Some(-1.0), Some(f64::INFINITY)] {
            assert_eq!(WindowSelector::warm_started(bad).choose(ewma, 2), 2);
        }
    }

    #[test]
    fn warm_start_cache_round_trips_per_scene() {
        let ewma = PrefetchPolicy::Ewma {
            alpha: 0.5,
            min: 1,
            max: 8,
        };
        let mut cache = WarmStartCache::new();
        assert!(cache.is_empty());
        // An unobserved selector must not create an entry.
        assert!(!cache.record("bicycle", &WindowSelector::new()));
        assert_eq!(cache.ratio("bicycle"), None);

        let mut sel = WindowSelector::new();
        sel.observe(ewma, 4.0, 1.0);
        sel.observe(ewma, 2.0, 1.0);
        assert!(cache.record("bicycle", &sel));
        assert_eq!(cache.len(), 1);
        let stored = cache.ratio("bicycle").expect("recorded");
        assert_eq!(Some(stored), sel.smoothed_ratio());
        // Seeding a fresh selector from the cache reproduces the choice the
        // trained selector would make — scenes warm-start independently.
        let warm = WindowSelector::warm_started(cache.ratio("bicycle"));
        assert_eq!(warm.choose(ewma, 1), sel.choose(ewma, 1));
        assert_eq!(cache.ratio("rubble"), None);
    }

    fn sample_record() -> TuningRecord {
        TuningRecord {
            ratio: 2.25,
            compute_threads: 8,
            adam_threads: 4,
            band_height: 32,
            prefetch_window: 3,
        }
    }

    #[test]
    fn tuning_records_round_trip_per_host_and_scene() {
        let mut cache = WarmStartCache::new();
        assert!(cache.record_tuning("amd-8c16t-l2:512k-l3:32768k-e8", "bicycle", sample_record()));
        let mut other = sample_record();
        other.compute_threads = 2;
        assert!(cache.record_tuning("intel-2c2t-l2:256k-l3:4096k-e2", "bicycle", other));
        assert_eq!(cache.len(), 2);

        // Same (host, scene) → the record comes back verbatim.
        assert_eq!(
            cache.tuning("amd-8c16t-l2:512k-l3:32768k-e8", "bicycle"),
            Some(sample_record())
        );
        // Hosts keep distinct records for the same scene.
        assert_eq!(
            cache
                .tuning("intel-2c2t-l2:256k-l3:4096k-e2", "bicycle")
                .map(|r| r.compute_threads),
            Some(2)
        );
        // Degenerate records are refused.
        for bad in [
            TuningRecord {
                ratio: f64::NAN,
                ..sample_record()
            },
            TuningRecord {
                ratio: -1.0,
                ..sample_record()
            },
            TuningRecord {
                compute_threads: 0,
                ..sample_record()
            },
            TuningRecord {
                band_height: 0,
                ..sample_record()
            },
        ] {
            assert!(!cache.record_tuning("h", "s", bad), "{bad:?}");
        }
    }

    #[test]
    fn tuning_lookup_falls_back_on_fingerprint_mismatch() {
        // The point of keying by fingerprint: a cache file carried to a
        // machine with different cores/caches must NOT apply the old thread
        // counts — the lookup misses and the caller autotunes from scratch.
        let mut cache = WarmStartCache::new();
        cache.record_tuning(
            "amd-64c128t-l2:1024k-l3:262144k-e64",
            "rubble",
            sample_record(),
        );
        assert_eq!(
            cache.tuning("intel-4c8t-l2:512k-l3:12288k-e4", "rubble"),
            None
        );
        assert_eq!(
            cache.tuning("amd-64c128t-l2:1024k-l3:262144k-e64", "garden"),
            None
        );
        // The per-scene ratio entry (host-independent scheduling hint) still
        // warm-starts the window even when the knobs cannot transfer.
        let mut sel = WindowSelector::new();
        sel.observe(PrefetchPolicy::Fixed, 3.0, 1.0);
        cache.record("rubble", &sel);
        assert_eq!(cache.ratio("rubble"), Some(3.0));
    }

    #[test]
    fn cache_files_round_trip_both_entry_kinds() {
        let mut cache = WarmStartCache::new();
        let mut sel = WindowSelector::new();
        sel.observe(PrefetchPolicy::Fixed, 1.5, 1.0);
        cache.record("bicycle", &sel);
        cache.record_tuning("amd-8c16t-l2:512k-l3:32768k-e8", "bicycle", sample_record());
        cache.record_tuning("amd-8c16t-l2:512k-l3:32768k-e8", "garden", sample_record());

        let text = cache.save_to_string();
        assert!(text.starts_with("clmwarm v2\n"), "{text}");
        let loaded = WarmStartCache::load_from_str(&text);
        assert_eq!(loaded.len(), cache.len());
        assert_eq!(loaded.ratio("bicycle"), Some(1.5));
        assert_eq!(
            loaded.tuning("amd-8c16t-l2:512k-l3:32768k-e8", "garden"),
            Some(sample_record())
        );
        // Serialisation is stable: saving the loaded cache reproduces the
        // text byte for byte.
        assert_eq!(loaded.save_to_string(), text);
    }

    #[test]
    fn corrupt_and_legacy_cache_files_degrade_to_partial_warm_starts() {
        // Legacy (pre-v2) headerless scene\tratio files still load.
        let legacy = WarmStartCache::load_from_str("bicycle\t2.5\nrubble\t0.75\n");
        assert_eq!(legacy.len(), 2);
        assert_eq!(legacy.ratio("bicycle"), Some(2.5));

        // Corruption — truncated records, junk, non-numeric fields, bad
        // ratios — skips the bad lines and keeps the good ones.
        let corrupt = "clmwarm v2\n\
                       ratio\tbicycle\t1.25\n\
                       ratio\tgarden\tnot-a-number\n\
                       ratio\tnan-scene\tNaN\n\
                       tuned\thost-a\tbicycle\t2.0\t8\t4\t32\t3\n\
                       tuned\thost-a\ttruncated\t2.0\t8\n\
                       tuned\thost-a\tgarden\t2.0\teight\t4\t32\t3\n\
                       complete garbage line with spaces\n\
                       \n";
        let cache = WarmStartCache::load_from_str(corrupt);
        assert_eq!(cache.ratio("bicycle"), Some(1.25));
        assert_eq!(cache.ratio("garden"), None, "unparseable ratio skipped");
        assert_eq!(cache.ratio("nan-scene"), None, "non-finite ratio refused");
        assert_eq!(
            cache.tuning("host-a", "bicycle"),
            Some(TuningRecord {
                ratio: 2.0,
                compute_threads: 8,
                adam_threads: 4,
                band_height: 32,
                prefetch_window: 3,
            })
        );
        assert_eq!(cache.tuning("host-a", "truncated"), None);
        assert_eq!(cache.tuning("host-a", "garden"), None);
        assert_eq!(cache.len(), 2);

        // Total garbage yields an empty cache, not an error.
        assert!(WarmStartCache::load_from_str("\0\0\0garbage").is_empty());
        assert!(WarmStartCache::load_from_str("").is_empty());
    }

    #[test]
    fn cache_file_io_round_trips_and_missing_files_cold_start() {
        let dir = std::env::temp_dir().join(format!("clm-warm-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.tsv");
        let mut cache = WarmStartCache::new();
        cache.record_tuning("host-x", "bicycle", sample_record());
        cache.save(&path).unwrap();
        let loaded = WarmStartCache::load(&path);
        assert_eq!(loaded.tuning("host-x", "bicycle"), Some(sample_record()));
        assert!(WarmStartCache::load(&dir.join("missing.tsv")).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn single_microbatch_batches_are_degenerate_but_valid() {
        let w = PrefetchWindow::new(3, 1);
        assert_eq!(w.gather_depends_on_compute_of(0), None);
        assert_eq!(w.staging_buffers(), 1);
        assert_eq!(w.issuable_after(None), 0..1);
    }
}
