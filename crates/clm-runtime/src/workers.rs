//! Hand-rolled worker-lane primitives for the threaded backend.
//!
//! The threaded execution backend runs each pipeline lane (parameter
//! gathers, CPU Adam) on a dedicated worker thread.  The build is
//! network-free, so instead of rayon/crossbeam this module provides the
//! small amount of infrastructure those lanes actually need, on top of
//! `std` only:
//!
//! * [`spawn_lane`] — a worker thread inside a [`std::thread::scope`] wired
//!   up with a **bounded** request queue in and a **bounded** completion
//!   queue out (`std::sync::mpsc::sync_channel`).  Each queue is used
//!   single-producer/single-consumer; the bounds are what give the pipeline
//!   backpressure: a lane that runs ahead of its consumer blocks on `send`
//!   instead of buffering unboundedly, exactly like a full CUDA stream.
//! * [`BusyTimer`] — lock-free accumulation of a lane's busy time, so the
//!   per-lane utilisation the simulated runtime derives from its event
//!   timeline can be *measured* for real threads.
//!
//! Scoped threads (rather than long-lived ones) are deliberate: they let a
//! worker borrow the trainer's pinned host store and staging-buffer pool
//! directly for the duration of one batch, so gathers copy host rows
//! straight into recycled staging buffers with no intermediate clone and no
//! `Arc` plumbing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::Scope;
use std::time::Instant;

/// Accumulates the busy time of one worker lane (nanoseconds, lock-free).
///
/// Shared by reference between the lane's worker thread (which records) and
/// the coordinating thread (which reads after the batch).
#[derive(Debug, Default)]
pub struct BusyTimer {
    busy_nanos: AtomicU64,
    tasks: AtomicU64,
}

impl BusyTimer {
    /// Creates a zeroed timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, adding its wall-clock duration to the lane's busy time.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Total seconds spent inside [`time`](Self::time) so far.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Number of timed tasks so far.
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }
}

/// The coordinator's two ends of one worker lane: a bounded request queue
/// into the worker and a bounded completion queue back out.
#[derive(Debug)]
pub struct WorkerLane<Req, Resp> {
    /// Sends work to the lane; blocks when the lane is `request_capacity`
    /// items behind (backpressure).
    pub requests: SyncSender<Req>,
    /// Receives finished work from the lane, in completion order.
    pub completions: Receiver<Resp>,
}

/// Spawns a worker lane inside `scope`.
///
/// `body` runs on the worker thread with the receiving end of the request
/// queue and the sending end of the completion queue; it should loop until
/// the request queue disconnects (the coordinator dropping
/// [`WorkerLane::requests`] is the shutdown signal).  Queue capacities are
/// clamped to at least 1 — a zero-capacity rendezvous channel would make
/// every handoff synchronous and serialise the pipeline.
pub fn spawn_lane<'scope, Req, Resp, F>(
    scope: &'scope Scope<'scope, '_>,
    request_capacity: usize,
    completion_capacity: usize,
    body: F,
) -> WorkerLane<Req, Resp>
where
    Req: Send + 'scope,
    Resp: Send + 'scope,
    F: FnOnce(Receiver<Req>, SyncSender<Resp>) + Send + 'scope,
{
    let (req_tx, req_rx) = sync_channel(request_capacity.max(1));
    let (resp_tx, resp_rx) = sync_channel(completion_capacity.max(1));
    scope.spawn(move || body(req_rx, resp_tx));
    WorkerLane {
        requests: req_tx,
        completions: resp_rx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_round_trips_work_in_order() {
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u32, u32, _>(scope, 1, 1, |req_rx, resp_tx| {
                while let Ok(x) = req_rx.recv() {
                    if resp_tx.send(x * 10).is_err() {
                        break;
                    }
                }
            });
            for x in 0..50u32 {
                lane.requests.send(x).unwrap();
                out.push(lane.completions.recv().unwrap());
            }
            drop(lane.requests);
            assert!(lane.completions.recv().is_err(), "worker exits on shutdown");
        });
        assert_eq!(out, (0..50).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_one_queues_still_drain_a_burst() {
        // A deliberately tight lane (capacity 1 both ways) must still move a
        // burst of work if the coordinator drains completions while sending —
        // the backpressure pattern the threaded backend relies on.
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u64, u64, _>(scope, 1, 1, |req_rx, resp_tx| {
                while let Ok(x) = req_rx.recv() {
                    if resp_tx.send(x + 1).is_err() {
                        break;
                    }
                }
            });
            let mut received = 0u64;
            let mut sum = 0u64;
            for x in 0..200u64 {
                while let Ok(y) = lane.completions.try_recv() {
                    received += 1;
                    sum += y;
                }
                lane.requests.send(x).unwrap();
            }
            drop(lane.requests);
            while let Ok(y) = lane.completions.recv() {
                received += 1;
                sum += y;
            }
            assert_eq!(received, 200);
            assert_eq!(sum, (1..=200).sum::<u64>());
        });
    }

    #[test]
    fn busy_timer_accumulates_across_threads() {
        let timer = BusyTimer::new();
        std::thread::scope(|scope| {
            let t = &timer;
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..8 {
                        t.time(|| std::hint::black_box((0..100).sum::<u64>()));
                    }
                });
            }
        });
        assert_eq!(timer.tasks(), 32);
        assert!(timer.busy_seconds() >= 0.0);
    }

    #[test]
    fn worker_death_surfaces_as_disconnect_not_hang() {
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u32, u32, _>(scope, 1, 1, |req_rx, _resp_tx| {
                // Worker exits after one request without replying.
                let _ = req_rx.recv();
            });
            lane.requests.send(1).unwrap();
            assert!(
                lane.completions.recv().is_err(),
                "dropped completion sender must disconnect the coordinator"
            );
        });
    }
}
