//! Hand-rolled worker-lane primitives for the threaded backend.
//!
//! The threaded execution backend runs each pipeline lane (parameter
//! gathers, CPU Adam) on a dedicated worker thread.  The build is
//! network-free, so instead of rayon/crossbeam this module provides the
//! small amount of infrastructure those lanes actually need, on top of
//! `std` only:
//!
//! * [`spawn_lane`] — a worker thread inside a [`std::thread::scope`] wired
//!   up with a **bounded** request queue in and a **bounded** completion
//!   queue out (`std::sync::mpsc::sync_channel`).  Each queue is used
//!   single-producer/single-consumer; the bounds are what give the pipeline
//!   backpressure: a lane that runs ahead of its consumer blocks on `send`
//!   instead of buffering unboundedly, exactly like a full CUDA stream.
//! * [`BusyTimer`] — lock-free accumulation of a lane's busy time, so the
//!   per-lane utilisation the simulated runtime derives from its event
//!   timeline can be *measured* for real threads.
//!
//! Scoped threads (rather than long-lived ones) are deliberate: they let a
//! worker borrow the trainer's pinned host store and staging-buffer pool
//! directly for the duration of one batch, so gathers copy host rows
//! straight into recycled staging buffers with no intermediate clone and no
//! `Arc` plumbing.

use sim_device::{Lane, OpKind, Timeline};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Mutex;
use std::thread::Scope;
use std::time::Instant;

/// Accumulates the busy time of one worker lane (nanoseconds, lock-free).
///
/// Shared by reference between the lane's worker thread (which records) and
/// the coordinating thread (which reads after the batch).
#[derive(Debug, Default)]
pub struct BusyTimer {
    busy_nanos: AtomicU64,
    tasks: AtomicU64,
}

impl BusyTimer {
    /// Creates a zeroed timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, adding its wall-clock duration to the lane's busy time.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.busy_nanos
            .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.tasks.fetch_add(1, Ordering::Relaxed);
        out
    }

    /// Total seconds spent inside [`time`](Self::time) so far.
    pub fn busy_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }

    /// Number of timed tasks so far.
    pub fn tasks(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }
}

/// One measured span recorded by a [`SpanLog`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedSpan {
    /// Work classification of the span.
    pub kind: OpKind,
    /// Lane the work is attributed to.
    pub lane: Lane,
    /// Start seconds relative to the log's origin.
    pub start: f64,
    /// End seconds relative to the log's origin.
    pub end: f64,
    /// Bytes moved (zero for pure compute).
    pub bytes: u64,
    /// Gaussian rows touched.
    pub rows: u64,
    /// Micro-batch the span belongs to, if any.
    pub microbatch: Option<u32>,
}

/// The span log's mutex was poisoned: a worker thread panicked while
/// recording.  The spans recorded up to the panic are internally consistent
/// (each push is atomic under the lock), so callers may still salvage them
/// with [`SpanLog::into_timeline`]; this error exists so strict callers can
/// refuse a partial capture instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanLogError;

impl std::fmt::Display for SpanLogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "span log poisoned: a worker panicked while recording; the capture may be partial"
        )
    }
}

impl std::error::Error for SpanLogError {}

/// Measured-span capture for the threaded backend: like [`BusyTimer`] it
/// is shared by reference between worker threads and the coordinator, but
/// it keeps each timed interval (with its lane, op kind and annotations)
/// instead of only the busy sum, so a batch's real thread execution can be
/// laid out on a [`Timeline`] and fed to the trace pipeline.  A mutex is
/// fine here: the threaded backend records tens of spans per batch, each
/// bracketing milliseconds of work.
///
/// A worker panic poisons the mutex, but the vector under it is always one
/// atomic push away from consistent — so every accessor recovers the lock
/// instead of cascading the panic into the coordinator,
/// [`poisoned`](Self::poisoned) reports that it happened, and
/// [`try_into_timeline`](Self::try_into_timeline) offers the strict
/// variant.
#[derive(Debug)]
pub struct SpanLog {
    origin: Instant,
    spans: Mutex<Vec<RecordedSpan>>,
}

impl SpanLog {
    /// Creates a log whose span clock starts now.
    pub fn new() -> Self {
        SpanLog {
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<RecordedSpan>> {
        self.spans.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether a worker panicked while holding the span lock.  Recording
    /// keeps working afterwards; strict consumers should switch to
    /// [`try_into_timeline`](Self::try_into_timeline).
    pub fn poisoned(&self) -> bool {
        self.spans.is_poisoned()
    }

    /// Seconds since the log's origin.
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Runs `f`, recording its wall-clock interval as a span.
    pub fn time<T>(
        &self,
        kind: OpKind,
        lane: Lane,
        bytes: u64,
        rows: u64,
        microbatch: Option<u32>,
        f: impl FnOnce() -> T,
    ) -> T {
        let start = self.now();
        let out = f();
        self.record(kind, lane, start, self.now(), bytes, rows, microbatch);
        out
    }

    /// Records an already-measured interval.
    pub fn record(
        &self,
        kind: OpKind,
        lane: Lane,
        start: f64,
        end: f64,
        bytes: u64,
        rows: u64,
        microbatch: Option<u32>,
    ) {
        self.lock().push(RecordedSpan {
            kind,
            lane,
            start,
            end,
            bytes,
            rows,
            microbatch,
        });
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no spans have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lays the recorded spans out on a measurement [`Timeline`], sorted by
    /// start time (concurrent workers interleave their records in lock
    /// order, not time order).  A poisoned log is salvaged: the spans
    /// recorded before the worker panic are laid out as usual — use
    /// [`try_into_timeline`](Self::try_into_timeline) to refuse partial
    /// captures instead.
    pub fn into_timeline(self) -> Timeline {
        spans_to_timeline(self.spans.into_inner().unwrap_or_else(|p| p.into_inner()))
    }

    /// Strict variant of [`into_timeline`](Self::into_timeline): errors if
    /// a worker panicked while recording (the capture may be missing the
    /// spans after the panic).
    pub fn try_into_timeline(self) -> Result<Timeline, SpanLogError> {
        self.spans
            .into_inner()
            .map(spans_to_timeline)
            .map_err(|_| SpanLogError)
    }
}

/// Sorts measured spans by start time and lays them out on a [`Timeline`].
fn spans_to_timeline(mut spans: Vec<RecordedSpan>) -> Timeline {
    spans.sort_by(|a, b| {
        a.start
            .partial_cmp(&b.start)
            .expect("span clocks are finite")
            .then(a.end.partial_cmp(&b.end).expect("span clocks are finite"))
    });
    let mut timeline = Timeline::new();
    for s in spans {
        timeline.push_span(
            s.kind,
            s.lane,
            s.start,
            s.end,
            s.bytes,
            s.rows,
            s.microbatch,
        );
    }
    timeline
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::new()
    }
}

/// The coordinator's two ends of one worker lane: a bounded request queue
/// into the worker and a bounded completion queue back out.
#[derive(Debug)]
pub struct WorkerLane<Req, Resp> {
    /// Sends work to the lane; blocks when the lane is `request_capacity`
    /// items behind (backpressure).
    pub requests: SyncSender<Req>,
    /// Receives finished work from the lane, in completion order.
    pub completions: Receiver<Resp>,
}

/// Spawns a worker lane inside `scope`.
///
/// `body` runs on the worker thread with the receiving end of the request
/// queue and the sending end of the completion queue; it should loop until
/// the request queue disconnects (the coordinator dropping
/// [`WorkerLane::requests`] is the shutdown signal).  Queue capacities are
/// clamped to at least 1 — a zero-capacity rendezvous channel would make
/// every handoff synchronous and serialise the pipeline.
pub fn spawn_lane<'scope, Req, Resp, F>(
    scope: &'scope Scope<'scope, '_>,
    request_capacity: usize,
    completion_capacity: usize,
    body: F,
) -> WorkerLane<Req, Resp>
where
    Req: Send + 'scope,
    Resp: Send + 'scope,
    F: FnOnce(Receiver<Req>, SyncSender<Resp>) + Send + 'scope,
{
    let (req_tx, req_rx) = sync_channel(request_capacity.max(1));
    let (resp_tx, resp_rx) = sync_channel(completion_capacity.max(1));
    scope.spawn(move || body(req_rx, resp_tx));
    WorkerLane {
        requests: req_tx,
        completions: resp_rx,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_round_trips_work_in_order() {
        let mut out = Vec::new();
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u32, u32, _>(scope, 1, 1, |req_rx, resp_tx| {
                while let Ok(x) = req_rx.recv() {
                    if resp_tx.send(x * 10).is_err() {
                        break;
                    }
                }
            });
            for x in 0..50u32 {
                lane.requests.send(x).unwrap();
                out.push(lane.completions.recv().unwrap());
            }
            drop(lane.requests);
            assert!(lane.completions.recv().is_err(), "worker exits on shutdown");
        });
        assert_eq!(out, (0..50).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_one_queues_still_drain_a_burst() {
        // A deliberately tight lane (capacity 1 both ways) must still move a
        // burst of work if the coordinator drains completions while sending —
        // the backpressure pattern the threaded backend relies on.
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u64, u64, _>(scope, 1, 1, |req_rx, resp_tx| {
                while let Ok(x) = req_rx.recv() {
                    if resp_tx.send(x + 1).is_err() {
                        break;
                    }
                }
            });
            let mut received = 0u64;
            let mut sum = 0u64;
            for x in 0..200u64 {
                while let Ok(y) = lane.completions.try_recv() {
                    received += 1;
                    sum += y;
                }
                lane.requests.send(x).unwrap();
            }
            drop(lane.requests);
            while let Ok(y) = lane.completions.recv() {
                received += 1;
                sum += y;
            }
            assert_eq!(received, 200);
            assert_eq!(sum, (1..=200).sum::<u64>());
        });
    }

    #[test]
    fn busy_timer_accumulates_across_threads() {
        let timer = BusyTimer::new();
        std::thread::scope(|scope| {
            let t = &timer;
            for _ in 0..4 {
                scope.spawn(move || {
                    for _ in 0..8 {
                        t.time(|| std::hint::black_box((0..100).sum::<u64>()));
                    }
                });
            }
        });
        assert_eq!(timer.tasks(), 32);
        assert!(timer.busy_seconds() >= 0.0);
    }

    #[test]
    fn span_log_collects_across_threads_and_sorts_by_start() {
        let log = SpanLog::new();
        std::thread::scope(|scope| {
            let l = &log;
            scope.spawn(move || {
                l.time(OpKind::LoadParams, Lane::GpuComm, 128, 4, Some(0), || {
                    std::hint::black_box((0..1000).sum::<u64>())
                });
            });
            scope.spawn(move || {
                l.time(OpKind::CpuAdamUpdate, Lane::CpuAdam, 0, 8, None, || {
                    std::hint::black_box((0..1000).sum::<u64>())
                });
            });
        });
        log.record(OpKind::Scheduling, Lane::CpuScheduler, 0.0, 0.0, 0, 2, None);
        assert_eq!(log.len(), 3);
        let timeline = log.into_timeline();
        let ops = timeline.ops();
        assert_eq!(ops.len(), 3);
        // Sorted by measured start: the zero-origin record comes first no
        // matter how late it was logged.
        assert_eq!(ops[0].kind, OpKind::Scheduling);
        for w in ops.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
        let load = ops.iter().find(|o| o.kind == OpKind::LoadParams).unwrap();
        assert_eq!((load.bytes, load.rows, load.microbatch), (128, 4, Some(0)));
        assert!(load.deps.is_empty(), "measured spans carry no edges");
    }

    /// Builds a log with one span whose mutex a "worker" then poisons by
    /// panicking while holding the lock.
    fn poisoned_log_with_one_span() -> SpanLog {
        let log = SpanLog::new();
        log.record(OpKind::Forward, Lane::GpuCompute, 0.0, 1.0, 0, 1, None);
        let _ = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = log.spans.lock().unwrap();
                    panic!("worker dies mid-record");
                })
                .join()
        });
        assert!(log.poisoned());
        log
    }

    #[test]
    fn poisoned_span_log_recovers_instead_of_cascading() {
        let log = poisoned_log_with_one_span();
        // Recording and reading keep working — no unwrap-crash on the
        // coordinator path.
        log.record(OpKind::Backward, Lane::GpuCompute, 1.0, 2.0, 0, 2, None);
        assert_eq!(log.len(), 2);
        // The lossy path salvages everything recorded so far.
        let timeline = log.into_timeline();
        assert_eq!(timeline.ops().len(), 2);
    }

    #[test]
    fn strict_timeline_conversion_reports_poisoning_as_typed_error() {
        let healthy = SpanLog::new();
        healthy.record(OpKind::Forward, Lane::GpuCompute, 0.0, 1.0, 0, 1, None);
        assert!(!healthy.poisoned());
        assert!(healthy.try_into_timeline().is_ok());

        let poisoned = poisoned_log_with_one_span();
        assert_eq!(poisoned.try_into_timeline().err(), Some(SpanLogError));
        assert!(!SpanLogError.to_string().is_empty());
    }

    #[test]
    fn worker_death_surfaces_as_disconnect_not_hang() {
        std::thread::scope(|scope| {
            let lane = spawn_lane::<u32, u32, _>(scope, 1, 1, |req_rx, _resp_tx| {
                // Worker exits after one request without replying.
                let _ = req_rx.recv();
            });
            lane.requests.send(1).unwrap();
            assert!(
                lane.completions.recv().is_err(),
                "dropped completion sender must disconnect the coordinator"
            );
        });
    }
}
