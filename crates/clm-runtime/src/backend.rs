//! The execution-backend abstraction.
//!
//! Two backends drive the trainers through the same stepwise
//! `plan → begin → stage/process/apply → finish` sequence and therefore
//! produce identical numerics; they differ in what their schedules *are*:
//!
//! * [`PipelinedEngine`](crate::PipelinedEngine) — the **simulated**
//!   backend: every lane executes inline on the calling thread while a
//!   discrete-event [`Timeline`](sim_device::Timeline) models when each
//!   operation would have run on the device.  It is the numerics oracle and
//!   the source of the paper-scale schedule metrics (Figures 11–15).
//! * [`ThreadedBackend`](crate::ThreadedBackend) — the **threaded**
//!   backend: the gather lane and the CPU Adam lane run on real worker
//!   threads, so communication and optimiser work genuinely overlap the
//!   render compute and the speedup is measurable in wall-clock time.
//!
//! [`ExecutionReport`] is the common currency: the numeric batch outcome
//! plus measured wall-clock time and per-lane busy seconds.  For the
//! simulated backend the lane times are simulated device seconds; for the
//! threaded backend they are measured thread busy times.

use clm_core::{BatchReport, DensifyReport, Trainer};
use gs_core::camera::Camera;
use gs_render::Image;
use gs_scene::Dataset;
use sim_device::FaultStats;

/// Busy seconds of each pipeline lane over one batch.
///
/// Simulated device seconds for the simulated backend, measured thread busy
/// seconds for the threaded backend.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LaneBusy {
    /// Forward/backward render compute (the would-be GPU lane).
    pub compute: f64,
    /// Parameter gathers / gradient stores (the communication lane).
    pub comm: f64,
    /// CPU Adam updates.
    pub adam: f64,
    /// Planning: frustum culling, ordering, finalisation analysis.
    pub scheduling: f64,
}

/// What one executed batch did, numerically and in time.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// The numeric batch outcome (identical across backends by
    /// construction).
    pub batch: BatchReport,
    /// Number of views trained by the batch.
    pub views: usize,
    /// Prefetch lookahead window the backend chose for this batch (fixed or
    /// adaptive).
    pub prefetch_window: usize,
    /// Banded-render worker count the batch actually ran with — the
    /// resolved value, never the `0` "inherit/autotune" sentinel a config
    /// may carry.
    pub compute_threads: usize,
    /// Accumulation band height the batch rendered with (resolved, part of
    /// the numeric contract).
    pub band_height: u32,
    /// Measured wall-clock seconds the batch took on the host.
    pub wall_seconds: f64,
    /// Per-lane busy seconds (see [`LaneBusy`] for units per backend).  For
    /// the sharded backend these are summed across devices; the per-device
    /// breakdown is in [`device_lanes`](Self::device_lanes).
    pub lanes: LaneBusy,
    /// Per-device lane busy breakdown of a sharded batch, indexed by device
    /// (simulated device seconds; `scheduling` is 0 per device because the
    /// host scheduler is shared).  Empty for single-device backends.
    pub device_lanes: Vec<LaneBusy>,
    /// Simulated makespan in device seconds (simulated backend only).
    pub sim_makespan: Option<f64>,
    /// The densification resize applied at this batch's boundary, if one
    /// was due (`None` for the fixed-size batches in between).
    pub resize: Option<DensifyReport>,
    /// Faults injected (and recovered from) while executing this batch.
    /// All-zero when no fault plan is installed.
    pub faults: FaultStats,
}

impl ExecutionReport {
    /// Wall-clock training throughput in images per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            self.views as f64 / self.wall_seconds
        }
    }

    /// Busy fraction of the wall clock for a lane time (0 when the batch
    /// took no measurable time).
    pub fn busy_fraction(&self, lane_seconds: f64) -> f64 {
        if self.wall_seconds <= 0.0 {
            0.0
        } else {
            (lane_seconds / self.wall_seconds).max(0.0)
        }
    }
}

/// A trainer execution strategy: how one batch's staged gathers, render
/// compute and optimiser updates are laid out on the host.
pub trait ExecutionBackend {
    /// Short stable identifier (`"simulated"`, `"threaded"`, …) used in
    /// benchmark output.
    fn backend_name(&self) -> &'static str;

    /// The wrapped trainer (model, config, counters).
    fn trainer(&self) -> &Trainer;

    /// Executes one training batch.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    fn execute_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> ExecutionReport;

    /// Trains over the whole dataset once (views grouped into batches in
    /// trajectory order), returning the per-batch reports.
    fn execute_epoch(&mut self, dataset: &Dataset, targets: &[Image]) -> Vec<ExecutionReport> {
        assert_eq!(dataset.cameras.len(), targets.len());
        let batch = self.trainer().config().batch_size.max(1);
        let mut reports = Vec::new();
        let mut start = 0;
        while start < dataset.cameras.len() {
            let end = (start + batch).min(dataset.cameras.len());
            reports.push(self.execute_batch(&dataset.cameras[start..end], &targets[start..end]));
            start = end;
        }
        reports
    }

    /// Mean PSNR of the current model over a set of posed images.
    fn evaluate_psnr(&self, cameras: &[Camera], targets: &[Image]) -> f32 {
        self.trainer().evaluate_psnr(cameras, targets)
    }
}
