//! The threaded execution backend: real overlap on real threads.
//!
//! [`ThreadedBackend`] executes the same stepwise trainer sequence as the
//! simulated [`PipelinedEngine`](crate::PipelinedEngine), but instead of
//! costing the lanes on a discrete-event timeline it *runs* them on
//! dedicated worker threads:
//!
//! * the **gather lane** (the GpuComm stream of Figure 6) copies pinned
//!   host rows into recycled [`PinnedBufferPool`] staging buffers up to a
//!   prefetch window ahead of the micro-batch that consumes them — the
//!   copies happen on the worker, straight from a shared borrow of the
//!   offloaded store (zero intermediate clones);
//! * the **CPU Adam lane** receives each finalisation group as packed
//!   [`AdamWorkItem`]s the moment its gradients are final and runs the
//!   update math (optionally chunked across further threads) while the
//!   main thread keeps rendering;
//! * the **main thread** is the GPU-compute stand-in: it renders
//!   micro-batches and accumulates gradients.
//!
//! # Why this is bit-identical to the synchronous trainer
//!
//! The finalisation schedule guarantees a Gaussian finalised by micro-batch
//! `i` is never touched by micro-batches `> i`, so deferring the Adam
//! write-back to batch end cannot change anything any later micro-batch
//! reads; and each packed Adam row is computed by exactly the same scalar
//! kernel the synchronous path runs, on exactly the values the synchronous
//! path would see.  Prefetched gathers are safe for the same reason the
//! simulated engine's are: within a batch no parameter a later micro-batch
//! fetches is updated before its last access
//! (`Trainer::process_microbatch` asserts staged rows never go stale).
//!
//! Bounded queues give the pipeline backpressure: a gather lane that runs
//! ahead blocks on its completion queue (capped at the window's
//! `staging_buffers()`, preserving the window+1 pinned-buffer high-water
//! mark), and an Adam lane that falls behind blocks the coordinator only
//! when its request queue is full.

use crate::backend::{ExecutionBackend, ExecutionReport, LaneBusy};
use crate::pool::{PinnedBufferPool, PoolStats, StagingBuffer};
use crate::prefetch::{PrefetchPolicy, PrefetchWindow, WindowSelector};
use crate::workers::{spawn_lane, BusyTimer, SpanLog};
use clm_core::{gather_rows_into, SystemKind, TrainConfig, Trainer};
use gs_core::camera::Camera;
use gs_core::gaussian::GaussianModel;
use gs_optim::{compute_packed_chunked, AdamWorkItem};
use gs_render::parallel::parallel_map;
use gs_render::Image;
use gs_scene::Dataset;
use sim_device::{FaultPlan, Lane, OpKind, Timeline};
use std::sync::mpsc::RecvTimeoutError;
use std::time::{Duration, Instant};

/// How long the coordinator waits on a lane completion before counting a
/// timeout, once a fault plan is installed.  Generous against injected
/// straggles (which re-execute microseconds of real work) but bounded, so a
/// genuinely wedged lane aborts instead of hanging the batch.
const LANE_RECV_TIMEOUT: Duration = Duration::from_secs(2);

/// Configuration of the threaded backend.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Prefetch lookahead window (0 = synchronous gathers, 1 = double
    /// buffering).  Under [`PrefetchPolicy::Adaptive`] this seeds the first
    /// batch.
    pub prefetch_window: usize,
    /// Fixed vs. adaptive window selection.
    pub policy: PrefetchPolicy,
    /// Threads the CPU Adam lane may chunk one group's update math across
    /// (1 = the lane's own worker thread does everything).  The default is
    /// the host's *effective* core count — cgroup CPU quotas included — not
    /// the raw logical CPU count: on a quota-limited container the old
    /// `available_parallelism`-based default oversubscribed the Adam lane
    /// by an order of magnitude.
    pub adam_threads: usize,
    /// Target rows per Adam chunk: groups smaller than
    /// `adam_threads × adam_chunk_rows` fan out across fewer threads so one
    /// chunk's working set stays cache-resident instead of splitting a tiny
    /// group 64 ways (0 = no target, always fan out to `adam_threads`).
    /// Pure scheduling — the chunked kernel is bit-identical for every
    /// thread count.
    pub adam_chunk_rows: usize,
    /// Capacity of the bounded request queues (≥ 1).  Capacity 1 gives the
    /// tightest backpressure; larger values let lanes run further ahead of
    /// their consumers.
    pub channel_capacity: usize,
    /// Worker threads for the banded render compute on the main thread's
    /// lane (0 = inherit the trainer's `TrainConfig::compute_threads`).
    /// This is the knob that lets the compute lane itself scale with cores;
    /// it never changes the numerics.
    pub compute_threads: usize,
    /// Accumulation band height override (0 = inherit the trainer's
    /// `TrainConfig::band_height`).  Part of the numeric contract — see
    /// `TrainConfig::band_height`.
    pub band_height: u32,
    /// Data-parallel device stand-ins (1 = single device).  With `D > 1`
    /// the batch is processed in rounds of `D` micro-batches whose views
    /// render concurrently — one thread per "device" — while losses,
    /// gradient accumulations and Adam hand-offs are replayed in the serial
    /// micro-batch order, so the numerics are bit-identical for every
    /// device count.  A round holds `D` staged buffers at once, so the
    /// effective prefetch window is floored at `D − 1`.
    pub num_devices: usize,
    /// Warm start for the tracked prefetch fetch/compute ratio (e.g. a
    /// [`WarmStartCache`](crate::WarmStartCache) entry recorded by an
    /// earlier run on the same scene); `None` cold-starts as before.
    pub warm_start_ratio: Option<f64>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            prefetch_window: 2,
            policy: PrefetchPolicy::Fixed,
            // Effective cores, not raw available_parallelism: a cgroup CPU
            // quota (the common container case) caps how many Adam chunk
            // threads can actually run.
            adam_threads: sim_device::HostTopology::cached().effective_cores(),
            adam_chunk_rows: 0,
            channel_capacity: 2,
            compute_threads: 0,
            band_height: 0,
            num_devices: 1,
            warm_start_ratio: None,
        }
    }
}

impl ThreadedConfig {
    /// A config whose scheduling knobs come from the startup autotuner
    /// ([`crate::autotune::tuned`]): quota-aware thread counts, an
    /// L2-fitted Adam chunk target, the calibrated prefetch-window seed and
    /// the host-derived band height.  Set any field afterwards to override
    /// a derived value.
    pub fn autotuned() -> Self {
        let knobs = crate::autotune::tuned().knobs;
        ThreadedConfig {
            prefetch_window: knobs.prefetch_window,
            adam_threads: knobs.adam_threads,
            adam_chunk_rows: knobs.adam_chunk_rows,
            compute_threads: knobs.compute_threads,
            band_height: knobs.band_height,
            ..Default::default()
        }
    }
}

/// A trainer executing with real worker threads for the communication and
/// CPU Adam lanes.
#[derive(Debug)]
pub struct ThreadedBackend {
    trainer: Trainer,
    config: ThreadedConfig,
    pool: PinnedBufferPool,
    /// Adaptive-window state fed by each batch's measured fetch/compute
    /// thread-busy times.
    window_selector: WindowSelector,
    /// Installed fault-injection plan, if any.  Transients and straggles
    /// re-execute *pure* work (gathers into scratch, Adam math on clones),
    /// so recovery costs real thread time but never changes the numerics.
    fault_plan: Option<FaultPlan>,
}

impl ThreadedBackend {
    /// Creates a threaded backend around an initial model.
    ///
    /// # Panics
    /// Panics if `config.adam_threads`, `config.channel_capacity` or
    /// `config.num_devices` is 0.
    pub fn new(initial_model: GaussianModel, train: TrainConfig, config: ThreadedConfig) -> Self {
        assert!(config.adam_threads > 0, "adam_threads must be at least 1");
        assert!(
            config.channel_capacity > 0,
            "channel_capacity must be at least 1"
        );
        assert!(config.num_devices > 0, "num_devices must be at least 1");
        let mut train = train;
        if config.compute_threads > 0 {
            train.compute_threads = config.compute_threads;
        }
        if config.band_height > 0 {
            train.band_height = config.band_height;
        }
        // Mirrored for introspection; the backend drives the stepwise API
        // and shards the rounds itself.
        train.num_devices = config.num_devices;
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        ThreadedBackend {
            trainer: Trainer::new(initial_model, train),
            config,
            pool: PinnedBufferPool::new(),
            window_selector,
            fault_plan: None,
        }
    }

    /// Creates a threaded backend around an already-built trainer — the
    /// checkpoint-restore path: the trainer carries its restored model,
    /// optimiser moments and counters, and training continues from there.
    ///
    /// # Panics
    /// Panics under the same config conditions as [`new`](Self::new).
    pub fn with_trainer(mut trainer: Trainer, config: ThreadedConfig) -> Self {
        assert!(config.adam_threads > 0, "adam_threads must be at least 1");
        assert!(
            config.channel_capacity > 0,
            "channel_capacity must be at least 1"
        );
        assert!(config.num_devices > 0, "num_devices must be at least 1");
        if config.compute_threads > 0 {
            trainer.set_compute_threads(config.compute_threads);
        }
        if config.band_height > 0 {
            trainer.set_band_height(config.band_height);
        }
        trainer.set_num_devices(config.num_devices);
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        ThreadedBackend {
            trainer,
            config,
            pool: PinnedBufferPool::new(),
            window_selector,
            fault_plan: None,
        }
    }

    /// Installs a fault-injection plan: from the next batch on, the worker
    /// lanes consult the plan's seeded schedule — transient gather/Adam
    /// failures re-execute their (pure) work, a straggler lane repeats its
    /// copies, staging leases may be denied — and the coordinator's lane
    /// waits become real receive timeouts with bounded retries.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The wrapped trainer (model, config, counters).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// The backend configuration.
    pub fn config(&self) -> &ThreadedConfig {
        &self.config
    }

    /// Pinned staging-pool statistics accumulated so far.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Caps the pinned staging pool at `limit` simultaneously checked-out
    /// buffers (`None` removes the cap) — the per-tenant pinned-memory
    /// budget seam used by the serving layer.
    pub fn set_staging_capacity(&mut self, limit: Option<usize>) {
        self.pool.set_capacity_limit(limit);
    }

    /// The adaptive-window state (tracked fetch/compute ratios), e.g. for
    /// recording into a [`WarmStartCache`](crate::WarmStartCache).
    pub fn window_selector(&self) -> &WindowSelector {
        &self.window_selector
    }

    /// Mean PSNR of the current model over a set of posed images (delegates
    /// to the trainer).
    pub fn evaluate_psnr(&self, cameras: &[Camera], targets: &[Image]) -> f32 {
        self.trainer.evaluate_psnr(cameras, targets)
    }

    /// Executes one training batch with threaded lanes, returning the
    /// numeric batch report plus measured wall-clock lane accounting.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn run_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> ExecutionReport {
        self.run_batch_inner(cameras, targets, None)
    }

    /// [`run_batch`](Self::run_batch) with measured span capture: every
    /// timed interval — on the worker threads and the coordinator alike —
    /// is additionally recorded against its lane and laid out on the
    /// returned measurement [`Timeline`], so the threaded backend's real
    /// overlap feeds the same trace pipeline the simulated backends do.
    /// Lane busy accounting in the report is untouched (it still comes
    /// from the [`BusyTimer`]s).
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn run_batch_traced(
        &mut self,
        cameras: &[Camera],
        targets: &[Image],
    ) -> (ExecutionReport, Timeline) {
        let log = SpanLog::new();
        let report = self.run_batch_inner(cameras, targets, Some(&log));
        (report, log.into_timeline())
    }

    fn run_batch_inner(
        &mut self,
        cameras: &[Camera],
        targets: &[Image],
        spans: Option<&SpanLog>,
    ) -> ExecutionReport {
        assert_eq!(
            cameras.len(),
            targets.len(),
            "need one target image per camera"
        );
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        let fault_before = self.fault_plan.as_ref().map(|p| p.stats());
        // Worker lanes and the coordinator all consult the same plan; the
        // clone is an `Arc` bump so the scoped threads can borrow a local.
        let fault_owned = self.fault_plan.clone();
        let fault = fault_owned.as_ref();

        let wall_start = Instant::now();
        // Densification boundary first: the worker lanes are scoped to one
        // batch (std::thread::scope below), so between batches nothing is in
        // flight and the model may resize; the lanes then spawn against the
        // post-resize store.  Boundary work is scheduler-lane time.
        let sched_start = spans.map(SpanLog::now);
        let plan = self.trainer.resize_and_plan(cameras);
        if plan.resize.is_some() {
            self.pool.reprovision(crate::engine::max_fetch_rows(&plan));
        }
        let scheduling_seconds = wall_start.elapsed().as_secs_f64();
        if let (Some(log), Some(s)) = (spans, sched_start) {
            // One span for the whole boundary: resize (when due) and
            // planning both run on the host scheduler here.
            log.record(
                OpKind::Scheduling,
                Lane::CpuScheduler,
                s,
                log.now(),
                0,
                self.trainer.model().len() as u64,
                None,
            );
        }

        let m = plan.num_microbatches();
        let devices = self.config.num_devices;
        // A D-device round holds D staged buffers at once, so the window
        // (and with it the gather lane's completion-queue budget) is
        // floored at D − 1; the round could not be staged otherwise.
        let window = self
            .window_selector
            .choose(self.config.policy, self.config.prefetch_window)
            .max(devices.saturating_sub(1));
        let pw = PrefetchWindow::new(window, m);

        let overlapped = self.trainer.overlapped();
        let is_clm = self.trainer.config().system == SystemKind::Clm;
        let mut grads = gs_optim::GradientBuffer::for_model(self.trainer.model());

        let gather_timer = BusyTimer::new();
        let adam_timer = BusyTimer::new();
        let mut compute_seconds = 0.0f64;
        let mut total_loss = 0.0f32;
        let mut adam_groups: Vec<Vec<AdamWorkItem>> = Vec::new();

        // Disjoint field borrows: the workers share the trainer read-only
        // for the batch; the gather worker owns the staging pool.
        let trainer = &self.trainer;
        let pool = &mut self.pool;
        let capacity = self.config.channel_capacity;
        let adam_threads = self.config.adam_threads;
        let adam_chunk_rows = self.config.adam_chunk_rows;
        // Chunk-target cap: small groups fan out across fewer threads so
        // each chunk keeps its cache-resident working-set size.  Identical
        // numerics for any fan-out (the chunked kernel guarantees it).
        let adam_fan_out = move |len: usize| {
            if adam_chunk_rows == 0 {
                adam_threads
            } else {
                gs_optim::threads_for_chunk_rows(len, adam_chunk_rows, adam_threads)
            }
        };
        let plan_ref = &plan;

        std::thread::scope(|scope| {
            // ---- Gather lane (CLM only): stages prefetched rows into
            // recycled pinned buffers.  Completion queue capacity equals the
            // window's buffer budget, so at most window+1 staged buffers are
            // ever in flight.
            let gather = is_clm.then(|| {
                let rows = trainer.offloaded().non_critical_rows();
                let timer = &gather_timer;
                spawn_lane::<(usize, StagingBuffer), (usize, StagingBuffer), _>(
                    scope,
                    capacity,
                    pw.staging_buffers(),
                    move |req_rx, resp_tx| {
                        let stage = |i: usize, pool: &mut PinnedBufferPool| {
                            let indices = plan_ref.fetched[i].indices();
                            let span_start = spans.map(SpanLog::now);
                            let buf = timer.time(|| {
                                if let Some(fp) = fault {
                                    if fp.next_staging_acquire() {
                                        // Denied lease: back off for real and
                                        // retry — the retry always succeeds
                                        // (the pool recycles), so the staged
                                        // bytes are untouched.
                                        pool.note_denied();
                                        std::thread::sleep(Duration::from_secs_f64(
                                            fp.retry().backoff_base,
                                        ));
                                    }
                                }
                                let mut buf = pool.acquire(indices.len());
                                gather_rows_into(rows, indices, &mut buf);
                                if let Some(fp) = fault {
                                    // Failed attempts and straggles re-execute
                                    // the pure copy into scratch: real lane
                                    // time, identical staged bytes.
                                    let mut redo = 0usize;
                                    let mut backoff = 0.0f64;
                                    if let Some(attempts) =
                                        fp.transient_attempts(OpKind::LoadParams)
                                    {
                                        redo += attempts as usize;
                                        backoff += fp.retry().total_backoff(attempts);
                                    }
                                    if let Some(factor) = fp.straggle_factor(Lane::GpuComm) {
                                        redo += (factor.round() as usize).saturating_sub(1);
                                    }
                                    let mut scratch = Vec::new();
                                    for _ in 0..redo {
                                        gather_rows_into(rows, indices, &mut scratch);
                                    }
                                    if backoff > 0.0 {
                                        std::thread::sleep(Duration::from_secs_f64(backoff));
                                    }
                                }
                                buf
                            });
                            if let (Some(log), Some(s)) = (spans, span_start) {
                                log.record(
                                    OpKind::LoadParams,
                                    Lane::GpuComm,
                                    s,
                                    log.now(),
                                    plan_ref.fetch_bytes(i),
                                    indices.len() as u64,
                                    Some(i as u32),
                                );
                            }
                            // Blocking send = backpressure once the buffer
                            // budget is staged but unconsumed.
                            resp_tx.send((i, buf)).is_ok()
                        };
                        for i in pw.issuable_after(None) {
                            if !stage(i, pool) {
                                return;
                            }
                        }
                        while let Ok((j, buf)) = req_rx.recv() {
                            // Recycling the consumed buffer is comm-lane
                            // work too (it is what a real pinned-pool free
                            // costs), so it counts towards the lane's busy
                            // time.
                            timer.time(|| pool.release(buf));
                            for i in pw.issuable_after(Some(j)) {
                                if !stage(i, pool) {
                                    return;
                                }
                            }
                        }
                    },
                )
            });

            // ---- CPU Adam lane (overlapped CLM only): computes packed
            // finalisation groups off the main thread.
            let adam = overlapped.then(|| {
                let timer = &adam_timer;
                let adam_config = trainer.optimizer().config().clone();
                spawn_lane::<Vec<AdamWorkItem>, Vec<AdamWorkItem>, _>(
                    scope,
                    capacity,
                    capacity,
                    move |req_rx, resp_tx| {
                        while let Ok(mut items) = req_rx.recv() {
                            let span_start = spans.map(SpanLog::now);
                            timer.time(|| {
                                if let Some(fp) = fault {
                                    if let Some(attempts) =
                                        fp.transient_attempts(OpKind::CpuAdamUpdate)
                                    {
                                        // Failed attempts run the update math
                                        // on clones — real work, discarded
                                        // results — then back off.
                                        for _ in 0..attempts {
                                            let mut retry_items = items.clone();
                                            let fan_out = adam_fan_out(retry_items.len());
                                            compute_packed_chunked(
                                                &adam_config,
                                                &mut retry_items,
                                                fan_out,
                                            );
                                        }
                                        std::thread::sleep(Duration::from_secs_f64(
                                            fp.retry().total_backoff(attempts),
                                        ));
                                    }
                                }
                                let fan_out = adam_fan_out(items.len());
                                compute_packed_chunked(&adam_config, &mut items, fan_out)
                            });
                            if let (Some(log), Some(s)) = (spans, span_start) {
                                log.record(
                                    OpKind::CpuAdamUpdate,
                                    Lane::CpuAdam,
                                    s,
                                    log.now(),
                                    0,
                                    items.len() as u64,
                                    None,
                                );
                            }
                            if resp_tx.send(items).is_err() {
                                return;
                            }
                        }
                    },
                )
            });

            // Empty groups would be pure handoff overhead; skipping them
            // cannot change numerics (an empty subset step is a no-op).
            // Packing runs on the coordinator but is optimiser-lane work,
            // so it is charged to the Adam lane's busy time.
            let send_group =
                |adam: &crate::workers::WorkerLane<Vec<AdamWorkItem>, Vec<AdamWorkItem>>,
                 indices: &[u32],
                 grads: &gs_optim::GradientBuffer| {
                    if !indices.is_empty() {
                        let items = adam_timer.time(|| trainer.pack_adam_group(grads, indices));
                        adam.requests.send(items).expect("adam lane alive");
                    }
                };

            // F_0: Gaussians the batch never touches are final from the
            // start; their update overlaps the whole pipeline.
            if let Some(adam) = &adam {
                send_group(adam, plan_ref.untouched.indices(), &grads);
            }

            let empty: StagingBuffer = Vec::new();
            let mut i = 0;
            while i < m {
                // One round = one micro-batch per device (the tail round
                // may be short).  devices = 1 degenerates to the serial
                // micro-batch loop.
                let round = (m - i).min(devices);
                let staged: Vec<StagingBuffer> = match &gather {
                    Some(lane) => (0..round)
                        .map(|r| {
                            let (j, buf) = recv_completion(&lane.completions, fault, "gather");
                            debug_assert_eq!(j, i + r, "gathers complete in issue order");
                            buf
                        })
                        .collect(),
                    None => vec![empty.clone(); round],
                };

                // Render the round's views concurrently — one thread per
                // "device".  Renders are pure (they read only their own
                // micro-batch's visibility set), so parallelism here cannot
                // change what is computed.
                let span_start = spans.map(SpanLog::now);
                let t = Instant::now();
                let results: Vec<(f32, gs_render::RenderGradients)> = if round > 1 {
                    parallel_map(round, round, |r| {
                        trainer.render_microbatch(plan_ref, i + r, cameras, targets, &staged[r])
                    })
                } else {
                    vec![trainer.render_microbatch(plan_ref, i, cameras, targets, &staged[0])]
                };
                compute_seconds += t.elapsed().as_secs_f64();
                if let (Some(log), Some(s)) = (spans, span_start) {
                    // One span per round: with D > 1 the round's renders run
                    // concurrently and share the measured interval.
                    let rows: u64 = (0..round)
                        .map(|r| plan_ref.ordered_sets[i + r].len() as u64)
                        .sum();
                    log.record(
                        OpKind::Forward,
                        Lane::GpuCompute,
                        s,
                        log.now(),
                        0,
                        rows,
                        Some(i as u32),
                    );
                }

                // Fixed-order reduction: losses, gradient accumulations and
                // Adam hand-offs replay in the serial micro-batch order, so
                // every floating-point reduction matches the 1-device path.
                for (r, (loss, render_grads)) in results.iter().enumerate() {
                    total_loss += loss;
                    let span_start = spans.map(SpanLog::now);
                    let t = Instant::now();
                    grads.accumulate_render(render_grads);
                    compute_seconds += t.elapsed().as_secs_f64();
                    if let (Some(log), Some(s)) = (spans, span_start) {
                        log.record(
                            OpKind::Backward,
                            Lane::GpuCompute,
                            s,
                            log.now(),
                            0,
                            plan_ref.ordered_sets[i + r].len() as u64,
                            Some((i + r) as u32),
                        );
                    }

                    if let Some(adam) = &adam {
                        // Drain finished groups first so the lane's bounded
                        // completion queue can never wedge the next send.
                        while let Ok(items) = adam.completions.try_recv() {
                            adam_groups.push(items);
                        }
                        let group = plan_ref.finalization.finalized_by(i + r);
                        send_group(adam, group.indices(), &grads);
                    }
                }

                if let Some(lane) = &gather {
                    // Return the round's buffers for recycling and unlock
                    // the next prefetch slots.
                    for (r, buf) in staged.into_iter().enumerate() {
                        lane.requests.send((i + r, buf)).expect("gather lane alive");
                    }
                }
                i += round;
            }

            // Shut the lanes down and drain what is still in flight.
            if let Some(lane) = gather {
                drop(lane.requests);
                assert!(
                    lane.completions.recv().is_err(),
                    "every staged micro-batch must already be consumed"
                );
            }
            if let Some(lane) = adam {
                drop(lane.requests);
                while let Ok(items) = lane.completions.recv() {
                    adam_groups.push(items);
                }
            }
        });

        // Deferred write-back of the worker-computed updates (disjoint
        // groups — order does not matter, but arrival order is deterministic
        // anyway) and the traffic accounting for the worker-side copies.
        // The write-back is the Adam lane's tail, so it is charged there.
        for items in &adam_groups {
            let span_start = spans.map(SpanLog::now);
            adam_timer.time(|| self.trainer.apply_adam_results(items));
            if let (Some(log), Some(s)) = (spans, span_start) {
                // Deferred write-back is the Adam lane's tail; `Other`
                // keeps it out of the update-math histograms.
                log.record(
                    OpKind::Other,
                    Lane::CpuAdam,
                    s,
                    log.now(),
                    0,
                    items.len() as u64,
                    None,
                );
            }
        }
        if is_clm {
            let staged_rows: usize = plan.fetched.iter().map(|s| s.len()).sum();
            self.trainer.note_gathered_rows(staged_rows);
        }

        let batch = self.trainer.finish_batch(&plan, &grads, total_loss);
        let wall_seconds = wall_start.elapsed().as_secs_f64();

        let comm = gather_timer.busy_seconds();
        let adam_busy = adam_timer.busy_seconds();
        if is_clm {
            self.window_selector
                .observe(self.config.policy, comm, compute_seconds);
        }

        let faults = match (&self.fault_plan, fault_before) {
            (Some(p), Some(before)) => p.stats().since(&before),
            _ => Default::default(),
        };
        ExecutionReport {
            batch,
            views: cameras.len(),
            prefetch_window: window,
            compute_threads: gs_render::parallel::resolve_compute_threads(
                self.trainer.config().compute_threads,
            ),
            band_height: self.trainer.resolved_band_height(),
            wall_seconds,
            lanes: LaneBusy {
                compute: compute_seconds,
                comm,
                adam: adam_busy,
                scheduling: scheduling_seconds,
            },
            device_lanes: Vec::new(),
            sim_makespan: None,
            resize: plan.resize.as_ref().map(|e| e.report()),
            faults,
        }
    }

    /// Trains over the whole dataset once (views grouped into batches in
    /// trajectory order), returning the per-batch reports.
    pub fn run_epoch(&mut self, dataset: &Dataset, targets: &[Image]) -> Vec<ExecutionReport> {
        ExecutionBackend::execute_epoch(self, dataset, targets)
    }
}

/// Waits for one lane completion under the installed fault plan's timeout
/// policy: each real recv timeout is counted, and a lane that stays silent
/// past the retry budget aborts the batch with a diagnostic instead of
/// hanging it.  Without a plan this is a plain blocking wait.
fn recv_completion<T>(
    rx: &std::sync::mpsc::Receiver<T>,
    fault: Option<&FaultPlan>,
    lane: &str,
) -> T {
    let Some(fp) = fault else {
        return rx
            .recv()
            .unwrap_or_else(|_| panic!("{lane} lane must outlive the batch"));
    };
    let mut timeouts = 0u32;
    loop {
        match rx.recv_timeout(LANE_RECV_TIMEOUT) {
            Ok(v) => return v,
            Err(RecvTimeoutError::Timeout) => {
                fp.note_timeout();
                timeouts += 1;
                if timeouts > fp.retry().max_retries {
                    fp.note_abort();
                    panic!(
                        "{lane} lane unresponsive after {timeouts} timeouts of \
                         {LANE_RECV_TIMEOUT:?} each; aborting the batch"
                    );
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                panic!("{lane} lane must outlive the batch")
            }
        }
    }
}

impl ExecutionBackend for ThreadedBackend {
    fn backend_name(&self) -> &'static str {
        "threaded"
    }

    fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    fn execute_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> ExecutionReport {
        self.run_batch(cameras, targets)
    }
}
