//! Pinned host staging-buffer pool.
//!
//! Every micro-batch gather lands in a pinned host buffer before the DMA
//! engine ships it to the GPU (§5.2).  Allocating pinned memory is expensive
//! and its footprint is what Table 6 reports, so a real runtime keeps a
//! small pool of recycled buffers — one per prefetch slot — instead of
//! allocating per micro-batch.  [`PinnedBufferPool`] reproduces that:
//! buffers are acquired for one micro-batch's staged rows, released once its
//! compute has consumed them, and reused for later gathers.  The pool tracks
//! the accounting a capacity planner needs: how many buffers/bytes were ever
//! live at once (the high-water mark) and how often an acquire was served by
//! recycling rather than a fresh allocation.

use gs_core::gaussian::NON_CRITICAL_FLOATS;

/// Bytes of one staged row (the non-critical attributes of one Gaussian).
pub const ROW_BYTES: usize = NON_CRITICAL_FLOATS * 4;

/// A staging buffer of gathered non-critical rows.
pub type StagingBuffer = Vec<[f32; NON_CRITICAL_FLOATS]>;

/// Usage statistics of a [`PinnedBufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Buffers currently checked out.
    pub outstanding: usize,
    /// Most buffers ever checked out simultaneously.
    pub high_water_buffers: usize,
    /// Peak pinned bytes owned by the pool (checked-out + free capacity).
    pub high_water_bytes: u64,
    /// Total acquire calls.
    pub acquires: u64,
    /// Acquires served by recycling a previously released buffer.
    pub recycled: u64,
    /// Acquires that had to allocate a fresh buffer.
    pub allocated: u64,
    /// Times the pool was re-leased for a model resize
    /// ([`PinnedBufferPool::reprovision`]).
    pub reprovisions: u64,
    /// Acquires denied — by the capacity limit
    /// ([`PinnedBufferPool::try_acquire`]) or by injected exhaustion
    /// ([`PinnedBufferPool::note_denied`]).
    pub denied: u64,
}

impl PoolStats {
    /// Fraction of acquires served from the free list (0 when none yet).
    pub fn recycle_rate(&self) -> f64 {
        if self.acquires == 0 {
            0.0
        } else {
            self.recycled as f64 / self.acquires as f64
        }
    }
}

/// A recycling pool of pinned host staging buffers with high-water
/// accounting.
#[derive(Debug, Default)]
pub struct PinnedBufferPool {
    free: Vec<StagingBuffer>,
    outstanding: usize,
    outstanding_bytes: u64,
    free_bytes: u64,
    capacity_limit: Option<usize>,
    stats: PoolStats,
}

impl PinnedBufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the number of simultaneously checked-out buffers.  `None`
    /// (the default) removes the cap.  Pinned host memory is a hard budget
    /// on real machines; the limit models hitting it, and
    /// [`try_acquire`](Self::try_acquire) is how callers observe it.
    pub fn set_capacity_limit(&mut self, limit: Option<usize>) {
        self.capacity_limit = limit;
    }

    /// The configured checkout cap, if any.
    pub fn capacity_limit(&self) -> Option<usize> {
        self.capacity_limit
    }

    /// Like [`acquire`](Self::acquire) but refuses (returning `None` and
    /// counting a denial) when the capacity limit is reached — the
    /// backpressure path a lane takes under pinned-memory exhaustion.
    pub fn try_acquire(&mut self, min_rows: usize) -> Option<StagingBuffer> {
        if let Some(limit) = self.capacity_limit {
            if self.outstanding >= limit {
                self.stats.denied += 1;
                return None;
            }
        }
        Some(self.acquire(min_rows))
    }

    /// Counts one denied acquisition injected from outside the pool (a
    /// fault plan simulating exhaustion without the pool being full).
    pub fn note_denied(&mut self) {
        self.stats.denied += 1;
    }

    /// Checks out a buffer with capacity for at least `min_rows` rows,
    /// recycling a released buffer when one is available.  The returned
    /// buffer is empty (length 0).
    pub fn acquire(&mut self, min_rows: usize) -> StagingBuffer {
        self.stats.acquires += 1;
        let mut buf = if let Some(mut buf) = self.free.pop() {
            self.stats.recycled += 1;
            self.free_bytes -= (buf.capacity() * ROW_BYTES) as u64;
            buf.clear();
            buf
        } else {
            self.stats.allocated += 1;
            StagingBuffer::new()
        };
        if buf.capacity() < min_rows {
            buf.reserve(min_rows - buf.len());
        }
        self.outstanding += 1;
        self.outstanding_bytes += (buf.capacity() * ROW_BYTES) as u64;
        self.stats.outstanding = self.outstanding;
        self.stats.high_water_buffers = self.stats.high_water_buffers.max(self.outstanding);
        self.stats.high_water_bytes = self
            .stats
            .high_water_bytes
            .max(self.outstanding_bytes + self.free_bytes);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    ///
    /// # Panics
    /// Panics if more buffers are released than were acquired.
    pub fn release(&mut self, buf: StagingBuffer) {
        assert!(self.outstanding > 0, "release without matching acquire");
        self.outstanding -= 1;
        // The buffer may have grown while checked out; saturate rather than
        // underflow if its capacity now exceeds what acquire() recorded.
        self.outstanding_bytes = self
            .outstanding_bytes
            .saturating_sub((buf.capacity() * ROW_BYTES) as u64);
        self.free_bytes += (buf.capacity() * ROW_BYTES) as u64;
        self.free.push(buf);
        self.stats.outstanding = self.outstanding;
        // Capacity may have grown while checked out (a reserve inside the
        // gather); the pool's owned footprint can therefore peak on release.
        self.stats.high_water_bytes = self
            .stats
            .high_water_bytes
            .max(self.outstanding_bytes + self.free_bytes);
    }

    /// Re-leases the pool for a densification resize: every **free** buffer
    /// is regrown to hold at least `min_rows` staged rows, so the first
    /// post-resize gathers run from right-sized pinned allocations instead
    /// of growing mid-lane (a pinned realloc inside a gather is exactly the
    /// stall the pool exists to avoid).  Outstanding buffers are untouched —
    /// the caller drains its lanes before resizing, so at a boundary there
    /// are none.  The owned-footprint high-water mark accounts for any
    /// growth, and the event is counted in [`PoolStats::reprovisions`].
    pub fn reprovision(&mut self, min_rows: usize) {
        self.stats.reprovisions += 1;
        for buf in &mut self.free {
            if buf.capacity() < min_rows {
                self.free_bytes -= (buf.capacity() * ROW_BYTES) as u64;
                buf.clear();
                buf.reserve(min_rows);
                self.free_bytes += (buf.capacity() * ROW_BYTES) as u64;
            }
        }
        self.stats.high_water_bytes = self
            .stats
            .high_water_bytes
            .max(self.outstanding_bytes + self.free_bytes);
    }

    /// Current usage statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Pinned bytes currently owned by the pool (checked-out + free).
    pub fn owned_bytes(&self) -> u64 {
        self.outstanding_bytes + self.free_bytes
    }

    /// Number of buffers currently available for recycling.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_recycles() {
        let mut pool = PinnedBufferPool::new();
        let mut a = pool.acquire(100);
        assert!(a.capacity() >= 100);
        a.push([0.5; NON_CRITICAL_FLOATS]);
        pool.release(a);
        // The next acquire reuses the buffer: no fresh allocation, contents
        // cleared.
        let b = pool.acquire(50);
        assert!(b.is_empty());
        assert!(b.capacity() >= 100, "recycled buffer keeps its capacity");
        let stats = pool.stats();
        assert_eq!(stats.acquires, 2);
        assert_eq!(stats.allocated, 1);
        assert_eq!(stats.recycled, 1);
        assert!((stats.recycle_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn high_water_tracks_concurrent_buffers() {
        let mut pool = PinnedBufferPool::new();
        let a = pool.acquire(10);
        let b = pool.acquire(20);
        let c = pool.acquire(30);
        assert_eq!(pool.stats().outstanding, 3);
        assert_eq!(pool.stats().high_water_buffers, 3);
        pool.release(a);
        pool.release(b);
        let d = pool.acquire(5);
        // Still only ever 3 live at once.
        assert_eq!(pool.stats().high_water_buffers, 3);
        assert_eq!(pool.stats().outstanding, 2);
        pool.release(c);
        pool.release(d);
        assert_eq!(pool.stats().outstanding, 0);
        assert_eq!(pool.free_buffers(), 3);
    }

    #[test]
    fn high_water_bytes_covers_owned_capacity() {
        let mut pool = PinnedBufferPool::new();
        let a = pool.acquire(64);
        let owned = pool.owned_bytes();
        assert!(owned >= (64 * ROW_BYTES) as u64);
        pool.release(a);
        // Released buffers still count toward the pool's pinned footprint.
        assert_eq!(pool.owned_bytes(), owned);
        assert!(pool.stats().high_water_bytes >= owned);
        // Re-acquiring does not grow the footprint.
        let b = pool.acquire(32);
        assert_eq!(pool.owned_bytes(), owned);
        pool.release(b);
        assert_eq!(pool.stats().high_water_bytes, owned);
    }

    #[test]
    fn reprovision_regrows_free_buffers_and_tracks_footprint() {
        let mut pool = PinnedBufferPool::new();
        let a = pool.acquire(8);
        let b = pool.acquire(8);
        pool.release(a);
        // One buffer free, one outstanding: re-leasing at a larger row
        // count must grow only the free one and count the event.
        pool.reprovision(64);
        assert_eq!(pool.stats().reprovisions, 1);
        let regrown = pool.acquire(1);
        assert!(
            regrown.capacity() >= 64,
            "free buffer re-leased at the new row count"
        );
        assert!(pool.stats().high_water_bytes >= pool.owned_bytes());
        pool.release(b);
        pool.release(regrown);
        assert_eq!(pool.stats().outstanding, 0);
        // Already-large-enough buffers are left alone.
        let owned = pool.owned_bytes();
        pool.reprovision(4);
        assert_eq!(pool.owned_bytes(), owned);
        assert_eq!(pool.stats().reprovisions, 2);
    }

    #[test]
    fn zero_row_acquire_is_fine() {
        let mut pool = PinnedBufferPool::new();
        let buf = pool.acquire(0);
        assert!(buf.is_empty());
        pool.release(buf);
        assert_eq!(pool.stats().acquires, 1);
    }

    #[test]
    #[should_panic(expected = "release without matching acquire")]
    fn unmatched_release_panics() {
        let mut pool = PinnedBufferPool::new();
        pool.release(StagingBuffer::new());
    }

    #[test]
    fn try_acquire_denies_past_the_capacity_limit_and_recovers() {
        let mut pool = PinnedBufferPool::new();
        pool.set_capacity_limit(Some(2));
        assert_eq!(pool.capacity_limit(), Some(2));
        let a = pool.try_acquire(8).expect("under the limit");
        let b = pool.try_acquire(8).expect("at the limit");
        // Exhausted: the third acquire is denied, repeatedly, without
        // panicking or allocating.
        assert!(pool.try_acquire(8).is_none());
        assert!(pool.try_acquire(8).is_none());
        let stats = pool.stats();
        assert_eq!(stats.denied, 2);
        assert_eq!(stats.outstanding, 2);
        assert_eq!(stats.acquires, 2, "denied acquires are not acquires");
        // Releasing frees a slot: the pool recovers and recycles.
        pool.release(a);
        let c = pool.try_acquire(4).expect("slot freed");
        assert_eq!(pool.stats().recycled, 1);
        pool.release(b);
        pool.release(c);
        assert_eq!(pool.stats().outstanding, 0);
        // Lifting the limit ends denial entirely.
        pool.set_capacity_limit(None);
        let extra: Vec<_> = (0..8).map(|_| pool.try_acquire(1).unwrap()).collect();
        for buf in extra {
            pool.release(buf);
        }
        assert_eq!(pool.stats().denied, 2, "no further denials");
    }

    #[test]
    fn injected_denials_count_without_consuming_capacity() {
        let mut pool = PinnedBufferPool::new();
        pool.note_denied();
        pool.note_denied();
        let stats = pool.stats();
        assert_eq!(stats.denied, 2);
        assert_eq!(stats.acquires, 0);
        assert_eq!(stats.outstanding, 0);
        // The pool still serves normally afterwards.
        let buf = pool.acquire(16);
        pool.release(buf);
        assert_eq!(pool.stats().acquires, 1);
    }

    #[test]
    fn exhaustion_under_contention_denies_exactly_the_overflow() {
        // Two lanes contending for a pool capped below their combined
        // frontier: every over-limit try_acquire must be denied, none may
        // panic, and the high-water mark must respect the cap.
        use std::sync::Mutex;
        let pool = Mutex::new(PinnedBufferPool::new());
        pool.lock().unwrap().set_capacity_limit(Some(3));
        let denied = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let pool = &pool;
                let denied = &denied;
                scope.spawn(move || {
                    for _ in 0..20 {
                        let got = pool.lock().unwrap().try_acquire(4);
                        match got {
                            Some(buf) => {
                                std::thread::yield_now();
                                pool.lock().unwrap().release(buf);
                            }
                            None => {
                                denied.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                    }
                });
            }
        });
        let pool = pool.into_inner().unwrap();
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert!(stats.high_water_buffers <= 3, "cap respected: {stats:?}");
        // Zero extra copies: fresh allocations only ever extend the live
        // frontier, so their count can never exceed the high-water mark.
        assert!(
            stats.allocated <= stats.high_water_buffers as u64,
            "an acquire allocated when a recycled buffer existed: {stats:?}"
        );
        assert_eq!(stats.recycled, stats.acquires - stats.allocated);
        assert_eq!(
            stats.denied,
            denied.load(std::sync::atomic::Ordering::Relaxed),
            "every denial was observed by exactly one caller"
        );
        assert_eq!(stats.acquires + stats.denied, 40);
    }

    #[test]
    fn two_device_lanes_contending_share_one_high_water_budget() {
        // Regression guard for the sharded gather path: two device lane
        // groups draw staging buffers from one shared pool.  Two real
        // threads each hold `per_lane` buffers simultaneously (a barrier
        // forces the overlap), so the high-water mark must account for the
        // sum of both lanes' frontiers — not either lane alone — and
        // buffers released by one lane must recycle into the other.
        use std::sync::{Barrier, Mutex};

        let pool = Mutex::new(PinnedBufferPool::new());
        let barrier = Barrier::new(2);
        let per_lane = 3usize;
        let rounds = 4usize;

        std::thread::scope(|scope| {
            for lane in 0..2 {
                let pool = &pool;
                let barrier = &barrier;
                scope.spawn(move || {
                    for round in 0..rounds {
                        let mut held = Vec::with_capacity(per_lane);
                        for slot in 0..per_lane {
                            // Differing row counts per lane/slot so buffers
                            // genuinely grow and recycling is observable.
                            let rows = 16 * (lane + 1) * (slot + 1) + round;
                            held.push(pool.lock().unwrap().acquire(rows));
                        }
                        // Both lanes hold their full frontier before either
                        // releases: the contention point.
                        barrier.wait();
                        let mut pool = pool.lock().unwrap();
                        for buf in held {
                            pool.release(buf);
                        }
                        drop(pool);
                        barrier.wait();
                    }
                });
            }
        });

        let pool = pool.into_inner().unwrap();
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0, "both lanes returned everything");
        assert_eq!(stats.acquires, (2 * per_lane * rounds) as u64);
        assert_eq!(
            stats.high_water_buffers,
            2 * per_lane,
            "the barrier guarantees both frontiers were live at once: {stats:?}"
        );
        assert!(
            stats.recycled >= (2 * per_lane * (rounds - 1)) as u64,
            "later rounds must run from recycled buffers: {stats:?}"
        );
        assert_eq!(pool.free_buffers(), 2 * per_lane);
        assert!(stats.high_water_bytes >= pool.owned_bytes());
        // Zero extra copies: the packed Adam path stages straight from the
        // lane-chunked layout into checked-out buffers, so the only fresh
        // allocations are the ones that first raised the high-water mark —
        // every later acquire must be served by recycling.
        assert_eq!(
            stats.allocated, stats.high_water_buffers as u64,
            "extra staging buffers were allocated beyond the live frontier: {stats:?}"
        );
        assert_eq!(stats.recycled, stats.acquires - stats.allocated);
    }
}
