//! Multi-device (sharded) execution of the CLM trainer.
//!
//! [`ShardedEngine`] is the N-device generalisation of the single-device
//! [`PipelinedEngine`](crate::PipelinedEngine): one scene trains across
//! `num_devices` simulated GPUs, each with its own **lane group** — a
//! gather/communication lane, a compute lane and a CPU Adam lane
//! ([`Lane::comm_of`], [`Lane::compute_of`], [`Lane::adam_of`]) — all driven
//! on one shared [`sim_device::Timeline`], so cross-device overlap and the
//! makespan come out of the same discrete-event scheduler the single-device
//! figures use.
//!
//! # Execution model (data-parallel micro-batches)
//!
//! * **Views**: micro-batch `i` of the planned batch runs on device
//!   `i mod num_devices` — each device renders its own view subset, with
//!   its own prefetch window over its local micro-batch sequence.
//! * **Gaussians**: a visibility-aware partition
//!   ([`gs_scene::partition_by_footprint`]) assigns every Gaussian an owner
//!   device by balancing projected-footprint load.  The owner's pinned host
//!   pool holds the Gaussian's offloaded attributes and optimiser state:
//!   gathers of rows owned by another device pay an extra peer hop
//!   ([`PEER_HOP_FACTOR`]), and each finalisation group's CPU Adam update is
//!   split across the owners' Adam lanes.
//! * **Gradients**: before a finalisation group's Adam update, its
//!   gradients are all-reduced across the devices in **fixed device order**
//!   (a chain of [`OpKind::AllReduce`] ops on the comm lanes, device 0
//!   first).
//!
//! # Why the trajectory is bit-identical for every shard count
//!
//! The engine drives the same stepwise trainer sequence as every other
//! backend, and the reduction order is fixed by construction: losses,
//! gradient accumulations and finalised Adam steps are replayed in the
//! serial micro-batch order `0, 1, 2, …` regardless of which device
//! computed them (round `r`'s per-device results join the shared gradient
//! buffer as micro-batches `rD, rD+1, …`).  Renders are pure and read only
//! their own micro-batch's visibility set, and a Gaussian finalised by
//! micro-batch `i` is never in a later micro-batch's visibility or fetch
//! set, so neither prefetched staging nor deferred reduction can observe a
//! different value than the synchronous trainer's.  Sharding therefore
//! changes *where* and *when* work is costed — never *what* is computed;
//! `tests/sharded_runtime.rs` asserts the trajectory equality for device
//! counts {1, 2, 4} across seeds, and CI's `shard-matrix` job gates on it.
//!
//! With `num_devices = 1` the schedule degenerates to exactly the
//! single-device engine's: the same ops on the same (classic) lanes with
//! the same durations and dependencies, so makespan and per-lane busy times
//! match [`PipelinedEngine`](crate::PipelinedEngine) to the last bit.
//!
//! The no-overlap comparison systems (`Baseline`, `EnhancedBaseline`,
//! `NaiveOffload`) are not sharded — they run their single-device schedules
//! on device 0, mirroring how the paper's baselines are measured.

use crate::backend::{ExecutionBackend, ExecutionReport, LaneBusy};
use crate::engine::{run_gpu_only_batch, run_naive_batch, CostModel, RuntimeConfig};
use crate::pool::{PinnedBufferPool, StagingBuffer};
use crate::prefetch::{PrefetchWindow, WindowSelector};
use crate::report::IterationReport;
use clm_core::{BatchPlan, SystemKind, TrainConfig, Trainer, GRADIENT_BYTES};
use gs_core::camera::Camera;
use gs_core::gaussian::GaussianModel;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::GradientBuffer;
use gs_render::Image;
use gs_scene::{partition_by_footprint, Dataset, GaussianPartition};
use sim_device::{FaultPlan, Lane, OpId, OpKind, Timeline};

/// Cost multiplier for gathering a row whose owner is another device: the
/// copy crosses from the owner's pinned pool through host memory before the
/// fetching device's DMA engine sees it — one extra hop at PCIe cost.
pub const PEER_HOP_FACTOR: f64 = 2.0;

/// A trainer executing across several simulated devices as one
/// discrete-event pipeline (see the module docs for the execution model).
#[derive(Debug)]
pub struct ShardedEngine {
    trainer: Trainer,
    config: RuntimeConfig,
    partition: GaussianPartition,
    /// The views the partitioner balances projected footprints over, kept so
    /// a densification boundary can re-run the partition for the resized
    /// Gaussian population.
    partition_cameras: Vec<Camera>,
    pool: PinnedBufferPool,
    window_selector: WindowSelector,
    /// Staged rows served from the fetching device's own shard so far.
    local_rows: u64,
    /// Staged rows that crossed shards (owner ≠ fetching device) so far.
    cross_shard_rows: u64,
    /// Installed fault-injection plan, if any.  Faults inflate simulated
    /// durations, deny staging leases or drop devices at batch boundaries —
    /// the numeric path is untouched by construction.
    fault_plan: Option<FaultPlan>,
}

impl ShardedEngine {
    /// Creates a sharded engine around an initial model.  `cameras` are the
    /// views the visibility-aware partitioner balances the Gaussians'
    /// projected footprints over (normally the training dataset's cameras).
    ///
    /// # Panics
    /// Panics if `config.num_devices` is 0 or exceeds the timeline's device
    /// range, or if a cost scale is not strictly positive.
    pub fn new(
        initial_model: GaussianModel,
        train: TrainConfig,
        config: RuntimeConfig,
        cameras: &[Camera],
    ) -> Self {
        assert!(config.num_devices >= 1, "num_devices must be at least 1");
        assert!(
            config.num_devices <= Lane::MAX_DEVICE + 1,
            "num_devices must fit the timeline's device-lane range"
        );
        assert!(config.cost_scale > 0.0, "cost_scale must be positive");
        assert!(
            config.pixel_cost_scale > 0.0,
            "pixel_cost_scale must be positive"
        );
        let mut train = train;
        if config.compute_threads > 0 {
            train.compute_threads = config.compute_threads;
        }
        // The trainer's config mirrors the engine's shard count so reports
        // and introspection agree; the engine drives the stepwise API
        // itself, so this never re-shards the numeric path.
        train.num_devices = config.num_devices;
        // The footprint sweep projects every culled Gaussian for every
        // camera — comparable to a render pass.  Only the CLM pipeline
        // consults the partition (the comparison systems run their
        // single-device schedules on device 0), so don't pay for it there.
        let partition = if train.system == SystemKind::Clm {
            partition_by_footprint(&initial_model, cameras, config.num_devices)
        } else {
            GaussianPartition::single_device(initial_model.len())
        };
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        ShardedEngine {
            trainer: Trainer::new(initial_model, train),
            config,
            partition,
            partition_cameras: cameras.to_vec(),
            pool: PinnedBufferPool::new(),
            window_selector,
            local_rows: 0,
            cross_shard_rows: 0,
            fault_plan: None,
        }
    }

    /// Creates a sharded engine around an already-built trainer — the
    /// checkpoint-restore path: the trainer carries its restored model,
    /// optimiser moments and counters, and training continues from there.
    /// The ownership partition is computed fresh from the restored model.
    ///
    /// # Panics
    /// Panics under the same config conditions as [`new`](Self::new).
    pub fn with_trainer(mut trainer: Trainer, config: RuntimeConfig, cameras: &[Camera]) -> Self {
        assert!(config.num_devices >= 1, "num_devices must be at least 1");
        assert!(
            config.num_devices <= Lane::MAX_DEVICE + 1,
            "num_devices must fit the timeline's device-lane range"
        );
        assert!(config.cost_scale > 0.0, "cost_scale must be positive");
        assert!(
            config.pixel_cost_scale > 0.0,
            "pixel_cost_scale must be positive"
        );
        if config.compute_threads > 0 {
            trainer.set_compute_threads(config.compute_threads);
        }
        trainer.set_num_devices(config.num_devices);
        let partition = if trainer.config().system == SystemKind::Clm {
            partition_by_footprint(trainer.model(), cameras, config.num_devices)
        } else {
            GaussianPartition::single_device(trainer.model().len())
        };
        let window_selector = WindowSelector::warm_started(config.warm_start_ratio);
        ShardedEngine {
            trainer,
            config,
            partition,
            partition_cameras: cameras.to_vec(),
            pool: PinnedBufferPool::new(),
            window_selector,
            local_rows: 0,
            cross_shard_rows: 0,
            fault_plan: None,
        }
    }

    /// Installs a fault-injection plan: from the next batch on, the
    /// timeline's ops are filtered through the plan's seeded schedule,
    /// staging leases may be denied, and a scheduled permanent device loss
    /// fires at its batch boundary (see
    /// [`lose_devices`](Self::lose_devices)).  Simulated backoff is priced
    /// at the engine's cost scale.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        plan.scale_backoff(self.config.cost_scale);
        self.fault_plan = Some(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Permanently removes `lose` devices at the current batch boundary:
    /// the engine's device count shrinks to the survivors and the Gaussian
    /// ownership partition is recomputed over them.  Because the trajectory
    /// is bit-identical at *every* device count, continuation on the
    /// survivors equals a fault-free run at the surviving count — graceful
    /// degradation, not divergence.
    ///
    /// # Panics
    /// Panics if the loss would leave no survivors.
    pub fn lose_devices(&mut self, lose: usize) {
        let survivors = self.config.num_devices.saturating_sub(lose);
        assert!(
            survivors >= 1,
            "device loss must leave at least one survivor (had {}, losing {lose})",
            self.config.num_devices
        );
        self.config.num_devices = survivors;
        self.trainer.set_num_devices(survivors);
        self.repartition();
    }

    /// The wrapped trainer (model, config, counters).
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// The runtime configuration.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The Gaussian→device ownership partition in force (trivial for the
    /// non-CLM comparison systems, which never consult it).
    pub fn partition(&self) -> &GaussianPartition {
        &self.partition
    }

    /// Recomputes the ownership partition from the current model over the
    /// construction-time camera set — run automatically at every
    /// densification boundary so new Gaussians land on balanced devices.
    /// Pure scheduling: ownership never affects the numerics.
    pub fn repartition(&mut self) {
        if self.trainer.config().system == SystemKind::Clm {
            self.partition = partition_by_footprint(
                self.trainer.model(),
                &self.partition_cameras,
                self.config.num_devices,
            );
        } else {
            self.partition = GaussianPartition::single_device(self.trainer.model().len());
        }
    }

    /// Pinned staging-pool statistics accumulated so far (one shared pool;
    /// all device gather lanes draw from it).
    pub fn pool_stats(&self) -> crate::pool::PoolStats {
        self.pool.stats()
    }

    /// Caps the shared pinned staging pool at `limit` simultaneously
    /// checked-out buffers (`None` removes the cap) — the per-tenant
    /// pinned-memory budget seam used by the serving layer.
    pub fn set_staging_capacity(&mut self, limit: Option<usize>) {
        self.pool.set_capacity_limit(limit);
    }

    /// The adaptive-window state (tracked fetch/compute ratios), e.g. for
    /// recording into a [`WarmStartCache`](crate::WarmStartCache).
    pub fn window_selector(&self) -> &WindowSelector {
        &self.window_selector
    }

    /// Staged rows served from the fetching device's own shard so far.
    pub fn local_rows(&self) -> u64 {
        self.local_rows
    }

    /// Staged rows whose owner was another device (each paid the
    /// [`PEER_HOP_FACTOR`] on the gather lane) so far.
    pub fn cross_shard_rows(&self) -> u64 {
        self.cross_shard_rows
    }

    /// Mean PSNR of the current model over a set of posed images (delegates
    /// to the trainer).
    pub fn evaluate_psnr(&self, cameras: &[Camera], targets: &[Image]) -> f32 {
        self.trainer.evaluate_psnr(cameras, targets)
    }

    /// Executes one training batch across the device lane groups, returning
    /// the numeric batch report together with the executed timeline.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn run_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> IterationReport {
        assert_eq!(
            cameras.len(),
            targets.len(),
            "need one target image per camera"
        );
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        let fault_before = self.fault_plan.as_ref().map(|p| p.stats());
        // Scheduled permanent device loss fires here, at the batch
        // boundary: every lane is drained between batches, so the survivors
        // repartition and continue without any in-flight state to migrate.
        if let Some(lose) = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.device_loss_at(self.trainer.batches_trained() as u64))
        {
            self.lose_devices(lose);
        }

        // Densification boundary first: the per-device lane groups are all
        // scoped to one batch, so between batches every lane is drained and
        // the model may resize.  The boundary re-runs the footprint
        // partition so new Gaussians land on balanced devices, and
        // re-leases the shared pinned pool at the new row counts — both
        // pure scheduling, so the trajectory stays bit-identical to the
        // 1-device trainer.
        let plan = self.trainer.resize_and_plan(cameras);
        let mut grads = GradientBuffer::for_model(self.trainer.model());
        let mut timeline = Timeline::new();
        if let Some(fp) = &self.fault_plan {
            timeline.install_fault_sink(fp.sink());
        }
        let cost = CostModel::from_runtime(&self.config);
        let window = self
            .window_selector
            .choose(self.config.policy, self.config.prefetch_window);

        let mut sched_deps = Vec::new();
        if let Some(event) = plan.resize.as_ref() {
            self.repartition();
            self.pool.reprovision(crate::engine::max_fetch_rows(&plan));
            sched_deps.push(timeline.push_traced(
                OpKind::Resize,
                Lane::CpuScheduler,
                cost.resize_time(&plan),
                0,
                event.rows_changed() as u64,
                None,
                &[],
            ));
        }
        let sched = timeline.push_traced(
            OpKind::Scheduling,
            Lane::CpuScheduler,
            cost.scheduling_time(self.trainer.model().len(), &plan),
            0,
            self.trainer.model().len() as u64,
            None,
            &sched_deps,
        );

        let total_loss = match self.trainer.config().system {
            SystemKind::Clm => self.run_clm_sharded(
                &plan,
                window,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
                &cost,
            ),
            SystemKind::NaiveOffload => run_naive_batch(
                &mut self.trainer,
                &cost,
                &plan,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
            ),
            SystemKind::Baseline | SystemKind::EnhancedBaseline => run_gpu_only_batch(
                &mut self.trainer,
                &cost,
                &plan,
                cameras,
                targets,
                &mut grads,
                &mut timeline,
                sched,
            ),
        };

        if self.trainer.config().system == SystemKind::Clm {
            self.window_selector.observe(
                self.config.policy,
                timeline.time_by_kind(OpKind::LoadParams),
                timeline.time_by_kind(OpKind::Forward) + timeline.time_by_kind(OpKind::Backward),
            );
        }

        let batch = self.trainer.finish_batch(&plan, &grads, total_loss);
        let faults = match (&self.fault_plan, fault_before) {
            (Some(p), Some(before)) => p.stats().since(&before),
            _ => Default::default(),
        };
        IterationReport {
            batch,
            timeline,
            views: cameras.len(),
            prefetch_window: window,
            compute_threads: gs_render::parallel::resolve_compute_threads(
                self.trainer.config().compute_threads,
            ),
            band_height: self.trainer.resolved_band_height(),
            resize: plan.resize.as_ref().map(|e| e.report()),
            faults,
        }
    }

    /// Trains over the whole dataset once (views grouped into batches in
    /// trajectory order), returning the per-iteration reports.
    pub fn run_epoch(&mut self, dataset: &Dataset, targets: &[Image]) -> Vec<IterationReport> {
        assert_eq!(dataset.cameras.len(), targets.len());
        let batch = self.trainer.config().batch_size.max(1);
        let mut reports = Vec::new();
        let mut start = 0;
        while start < dataset.cameras.len() {
            let end = (start + batch).min(dataset.cameras.len());
            reports.push(self.run_batch(&dataset.cameras[start..end], &targets[start..end]));
            start = end;
        }
        reports
    }

    /// The sharded CLM pipeline: per-device windowed gather prefetch,
    /// per-device compute, fixed-order all-reduce, owner-sharded CPU Adam.
    #[allow(clippy::too_many_arguments)]
    fn run_clm_sharded(
        &mut self,
        plan: &BatchPlan,
        window: usize,
        cameras: &[Camera],
        targets: &[Image],
        grads: &mut GradientBuffer,
        timeline: &mut Timeline,
        sched: OpId,
        cost: &CostModel,
    ) -> f32 {
        let devices = self.config.num_devices;
        let m = plan.num_microbatches();
        let overlapped = self.trainer.overlapped();
        // Device d's local micro-batch sequence is d, d + D, d + 2D, …;
        // each device gets its own prefetch window over that sequence.
        let local_len = |d: usize| (m + devices - 1 - d) / devices;
        let windows: Vec<PrefetchWindow> = (0..devices)
            .map(|d| PrefetchWindow::new(window, local_len(d)))
            .collect();

        self.trainer.begin_batch(plan, grads);
        if overlapped {
            // F_0: Gaussians the batch never touches are final from the
            // start; each owner device updates its shard immediately.
            for (dev, count) in self
                .partition
                .split_counts(plan.untouched.indices())
                .iter()
                .enumerate()
            {
                timeline.push_traced(
                    OpKind::CpuAdamUpdate,
                    Lane::adam_of(dev),
                    cost.device
                        .cpu_adam_time(cost.scaled_gaussians(*count) * PARAMS_PER_GAUSSIAN as u64),
                    0,
                    *count as u64,
                    None,
                    &[sched],
                );
            }
        }

        let mut gather_ops: Vec<Option<OpId>> = vec![None; m];
        let mut backward_ops: Vec<Option<OpId>> = vec![None; m];
        let mut staging_slots: Vec<Option<StagingBuffer>> = (0..m).map(|_| None).collect();
        let mut last_store: Vec<Option<OpId>> = vec![None; devices];
        let mut last_allreduce: Option<OpId> = None;

        // Initial prefetch frontier, device-major: every device fills its
        // own window before any compute is issued.
        for dev in 0..devices {
            for k in windows[dev].issuable_after(None) {
                let i = k * devices + dev;
                let (id, buf) = self
                    .issue_gather(plan, i, &windows, &backward_ops, timeline, sched, cost)
                    .expect("frontier indices are in range");
                gather_ops[i] = Some(id);
                staging_slots[i] = Some(buf);
            }
        }

        let mut total_loss = 0.0f32;
        for i in 0..m {
            let dev = i % devices;
            let k = i / devices;
            let buf = staging_slots[i]
                .take()
                .expect("prefetch schedule must have staged this micro-batch");

            let pixels = cost.scaled_pixels(&targets[plan.order[i]]);
            let rows = plan.ordered_sets[i].len() as u64;
            let gaussians = cost.scaled_gaussians(plan.ordered_sets[i].len());
            let fwd = timeline.push_traced(
                OpKind::Forward,
                Lane::compute_of(dev),
                cost.device.forward_time(gaussians, pixels),
                0,
                rows,
                Some(i as u32),
                &[gather_ops[i].expect("gather issued before compute")],
            );
            let bwd = timeline.push_traced(
                OpKind::Backward,
                Lane::compute_of(dev),
                cost.device.backward_time(gaussians, pixels),
                0,
                rows,
                Some(i as u32),
                &[fwd],
            );
            backward_ops[i] = Some(bwd);

            total_loss += self
                .trainer
                .process_microbatch(plan, i, cameras, targets, &buf, grads);
            self.pool.release(buf);

            // Retire this micro-batch's finalised gradients to the device's
            // host shard …
            let group_rows = plan.finalization.finalized_by(i).len() as u64;
            let store_bytes = cost.scaled_bytes(plan.store_bytes(i));
            let store = timeline.push_traced(
                OpKind::StoreGrads,
                Lane::comm_of(dev),
                cost.device.transfer_time(store_bytes),
                store_bytes,
                group_rows,
                Some(i as u32),
                &[bwd],
            );
            last_store[dev] = Some(store);

            // … reduce the finalised group across devices in fixed order,
            // then let each owner update its shard on its Adam lane.
            self.trainer.apply_finalized(plan, i, grads);
            if overlapped {
                let group = plan.finalization.finalized_by(i);
                let adam_dep = push_allreduce(
                    timeline,
                    cost,
                    devices,
                    group.len(),
                    Some(i as u32),
                    &last_store,
                    &mut last_allreduce,
                    sched,
                );
                for (dev2, count) in self
                    .partition
                    .split_counts(group.indices())
                    .iter()
                    .enumerate()
                {
                    timeline.push_traced(
                        OpKind::CpuAdamUpdate,
                        Lane::adam_of(dev2),
                        cost.device.cpu_adam_time(
                            cost.scaled_gaussians(*count) * PARAMS_PER_GAUSSIAN as u64,
                        ),
                        0,
                        *count as u64,
                        Some(i as u32),
                        &[adam_dep],
                    );
                }
            }

            // This completion frees the next prefetch slot on this device.
            for k2 in windows[dev].issuable_after(Some(k)) {
                let j = k2 * devices + dev;
                if let Some((id, buf)) =
                    self.issue_gather(plan, j, &windows, &backward_ops, timeline, sched, cost)
                {
                    gather_ops[j] = Some(id);
                    staging_slots[j] = Some(buf);
                }
            }
        }

        if !overlapped {
            // Batch-end dense Adam (no-overlap CLM semantics): all-reduce
            // the whole gradient, then every owner updates its shard.
            let adam_dep = push_allreduce(
                timeline,
                cost,
                devices,
                self.trainer.model().len(),
                None,
                &last_store,
                &mut last_allreduce,
                sched,
            );
            for (dev, count) in self.partition.device_counts().iter().enumerate() {
                timeline.push_traced(
                    OpKind::CpuAdamUpdate,
                    Lane::adam_of(dev),
                    cost.device
                        .cpu_adam_time(cost.scaled_gaussians(*count) * PARAMS_PER_GAUSSIAN as u64),
                    0,
                    *count as u64,
                    None,
                    &[adam_dep],
                );
            }
        }
        total_loss
    }

    /// Issues the gather of micro-batch `i` on its device's comm lane and
    /// stages the rows into a pooled buffer.  Rows owned by another device
    /// pay the peer hop.  Returns `None` when `i` is past the batch (the
    /// per-device windows clamp to each local sequence, so this is a pure
    /// defensive guard).
    fn issue_gather(
        &mut self,
        plan: &BatchPlan,
        i: usize,
        windows: &[PrefetchWindow],
        backward_ops: &[Option<OpId>],
        timeline: &mut Timeline,
        sched: OpId,
        cost: &CostModel,
    ) -> Option<(OpId, StagingBuffer)> {
        if i >= plan.num_microbatches() {
            return None;
        }
        let devices = self.config.num_devices;
        let dev = i % devices;
        let k = i / devices;
        let mut deps = vec![sched];
        if let Some(k_dep) = windows[dev].gather_depends_on_compute_of(k) {
            deps.push(
                backward_ops[k_dep * devices + dev]
                    .expect("window dependencies point at completed compute"),
            );
        }

        // Split the fetch by ownership: local rows at full PCIe bandwidth,
        // cross-shard rows with the extra peer hop.  The recorded bytes are
        // the full fetch either way, so the timeline's communication volume
        // keeps matching the batch accounting.
        let indices = plan.fetched[i].indices();
        let local = indices
            .iter()
            .filter(|&&g| self.partition.owner_of(g) == dev)
            .count();
        let remote = indices.len() - local;
        self.local_rows += local as u64;
        self.cross_shard_rows += remote as u64;
        let local_bytes = cost.scaled_bytes((local * clm_core::NON_CRITICAL_BYTES) as u64);
        let remote_bytes = cost.scaled_bytes((remote * clm_core::NON_CRITICAL_BYTES) as u64);
        let duration = cost.device.transfer_time(local_bytes)
            + PEER_HOP_FACTOR * cost.device.transfer_time(remote_bytes);
        let bytes = cost.scaled_bytes(plan.fetch_bytes(i));
        let id = timeline.push_traced(
            OpKind::LoadParams,
            Lane::comm_of(dev),
            duration,
            bytes,
            indices.len() as u64,
            Some(i as u32),
            &deps,
        );

        if let Some(fp) = &self.fault_plan {
            if fp.next_staging_acquire() {
                // Denied lease: stall one backoff interval on the host
                // scheduler, then succeed (the pool recycles at the batch
                // boundary) — exhaustion costs schedule time, never staging
                // content.
                self.pool.note_denied();
                timeline.push_traced(
                    OpKind::Other,
                    Lane::CpuScheduler,
                    fp.retry().backoff_base,
                    0,
                    0,
                    None,
                    &[],
                );
            }
        }
        let mut buf = self.pool.acquire(plan.fetched[i].len());
        self.trainer.stage_microbatch(plan, i, &mut buf);
        Some((id, buf))
    }
}

/// Pushes the fixed-device-order all-reduce chain for one finalisation
/// group's gradients and returns the op the dependent Adam updates must
/// wait for.  With one device there is nothing to exchange — the dependency
/// is the device's latest gradient store, exactly as in the single-device
/// engine.
#[allow(clippy::too_many_arguments)]
fn push_allreduce(
    timeline: &mut Timeline,
    cost: &CostModel,
    devices: usize,
    group_len: usize,
    microbatch: Option<u32>,
    last_store: &[Option<OpId>],
    last_allreduce: &mut Option<OpId>,
    sched: OpId,
) -> OpId {
    if devices == 1 {
        return last_store[0].unwrap_or(sched);
    }
    // Ring all-reduce: every device sends and receives (D-1)/D of the
    // group's gradient bytes.  The chain over devices 0 → D-1 makes the
    // reduction order an explicit scheduling dependency — the determinism
    // the bit-identity argument relies on.
    let total_bytes = cost.scaled_bytes((group_len * GRADIENT_BYTES) as u64);
    let per_device = (total_bytes as f64 * (devices - 1) as f64 / devices as f64).round() as u64;
    let mut base_deps: Vec<OpId> = last_store.iter().flatten().copied().collect();
    if base_deps.is_empty() {
        base_deps.push(sched);
    }
    if let Some(prev) = *last_allreduce {
        base_deps.push(prev);
    }
    let mut tail: Option<OpId> = None;
    for dev in 0..devices {
        let mut deps = base_deps.clone();
        if let Some(t) = tail {
            deps.push(t);
        }
        tail = Some(timeline.push_traced(
            OpKind::AllReduce,
            Lane::comm_of(dev),
            cost.device.transfer_time(per_device),
            per_device,
            group_len as u64,
            microbatch,
            &deps,
        ));
    }
    *last_allreduce = tail;
    tail.expect("devices >= 2 pushed at least one op")
}

impl ExecutionBackend for ShardedEngine {
    fn backend_name(&self) -> &'static str {
        "sharded"
    }

    fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Executes the batch inline while costing it on the shared multi-device
    /// timeline; lane busy times are simulated device seconds summed across
    /// devices, with the per-device breakdown in `device_lanes`.
    fn execute_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> ExecutionReport {
        let wall_start = std::time::Instant::now();
        let report = self.run_batch(cameras, targets);
        let wall_seconds = wall_start.elapsed().as_secs_f64();
        let t = &report.timeline;
        let device_lanes: Vec<LaneBusy> = (0..self.config.num_devices)
            .map(|dev| LaneBusy {
                compute: t.busy_time(Lane::compute_of(dev)),
                comm: t.busy_time(Lane::comm_of(dev)),
                adam: t.busy_time(Lane::adam_of(dev)),
                scheduling: 0.0,
            })
            .collect();
        ExecutionReport {
            views: report.views,
            prefetch_window: report.prefetch_window,
            compute_threads: report.compute_threads,
            band_height: report.band_height,
            wall_seconds,
            lanes: LaneBusy {
                compute: device_lanes.iter().map(|l| l.compute).sum(),
                comm: device_lanes.iter().map(|l| l.comm).sum(),
                adam: device_lanes.iter().map(|l| l.adam).sum(),
                scheduling: t.busy_time(Lane::CpuScheduler),
            },
            device_lanes,
            sim_makespan: Some(t.makespan()),
            resize: report.resize,
            faults: report.faults,
            batch: report.batch,
        }
    }
}
