//! Precise Gaussian caching (§4.2.1).
//!
//! Consecutive micro-batches share Gaussians because of spatial locality.
//! The culling step already knows each micro-batch's visibility set, so CLM
//! can serve the intersection `S_i ∩ S_{i+1}` from the GPU-resident double
//! buffer instead of re-fetching it over PCIe — and, symmetrically, keep the
//! gradients of shared Gaussians on the GPU for accumulation instead of
//! round-tripping them through host memory.  [`CachePlan`] captures exactly
//! that decision for one micro-batch transition.

use crate::offload::{GRADIENT_BYTES, NON_CRITICAL_BYTES};
use gs_core::visibility::VisibilitySet;

/// The data-movement plan for loading one micro-batch's parameters and
/// retiring the previous micro-batch's gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct CachePlan {
    /// Gaussians of the current micro-batch served from the on-GPU cache
    /// (`S_cur ∩ S_prev`).
    pub cached: VisibilitySet,
    /// Gaussians that must be fetched from pinned host memory
    /// (`S_cur \ S_prev`).
    pub fetched: VisibilitySet,
    /// Gaussians of the previous micro-batch whose gradients must be stored
    /// to host memory now (`S_prev \ S_cur`).
    pub grads_to_store: VisibilitySet,
    /// Gaussians of the previous micro-batch whose gradients stay on the GPU
    /// to be accumulated into the next micro-batch (`S_prev ∩ S_cur`).
    pub grads_to_keep: VisibilitySet,
}

impl CachePlan {
    /// Builds the plan for moving from `prev` (the previous micro-batch's
    /// visibility set, or an empty set at the start of a batch) to `cur`.
    pub fn new(prev: &VisibilitySet, cur: &VisibilitySet) -> Self {
        CachePlan {
            cached: cur.intersection(prev),
            fetched: cur.difference(prev),
            grads_to_store: prev.difference(cur),
            grads_to_keep: prev.intersection(cur),
        }
    }

    /// Builds the plan for the first micro-batch of a batch (nothing cached).
    pub fn cold(cur: &VisibilitySet) -> Self {
        Self::new(&VisibilitySet::new(), cur)
    }

    /// Bytes of parameters fetched over PCIe for this transition
    /// (non-critical attributes only; selection-critical never move).
    pub fn fetch_bytes(&self) -> u64 {
        (self.fetched.len() * NON_CRITICAL_BYTES) as u64
    }

    /// Bytes of parameters that caching avoided transferring.
    pub fn saved_fetch_bytes(&self) -> u64 {
        (self.cached.len() * NON_CRITICAL_BYTES) as u64
    }

    /// Bytes of gradients stored to host memory for this transition.
    pub fn store_bytes(&self) -> u64 {
        (self.grads_to_store.len() * GRADIENT_BYTES) as u64
    }

    /// Fraction of the current working set served from the cache
    /// (0 when the working set is empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cached.len() + self.fetched.len();
        if total == 0 {
            0.0
        } else {
            self.cached.len() as f64 / total as f64
        }
    }

    /// Sanity check: the plan partitions the current and previous sets.
    pub fn is_consistent_with(&self, prev: &VisibilitySet, cur: &VisibilitySet) -> bool {
        self.cached.len() + self.fetched.len() == cur.len()
            && self.grads_to_store.len() + self.grads_to_keep.len() == prev.len()
            && self.cached.union(&self.fetched) == *cur
            && self.grads_to_store.union(&self.grads_to_keep) == *prev
    }
}

/// Builds the cache plans for a whole ordered batch of visibility sets,
/// including a final "flush" plan that stores the last micro-batch's
/// gradients.
///
/// The returned vector has `sets.len() + 1` entries: one per micro-batch
/// plus the flush.
pub fn plan_batch(sets: &[VisibilitySet]) -> Vec<CachePlan> {
    let mut plans = Vec::with_capacity(sets.len() + 1);
    let empty = VisibilitySet::new();
    let mut prev = &empty;
    for cur in sets {
        plans.push(CachePlan::new(prev, cur));
        prev = cur;
    }
    // Flush: everything still on the GPU goes back to host memory.
    plans.push(CachePlan::new(prev, &empty));
    plans
}

/// Total CPU→GPU parameter bytes for an ordered batch **with** caching.
pub fn batch_fetch_bytes(sets: &[VisibilitySet]) -> u64 {
    plan_batch(sets).iter().map(CachePlan::fetch_bytes).sum()
}

/// Total CPU→GPU parameter bytes for the same batch **without** caching
/// (every micro-batch reloads its full working set).
pub fn batch_fetch_bytes_no_cache(sets: &[VisibilitySet]) -> u64 {
    sets.iter()
        .map(|s| (s.len() * NON_CRITICAL_BYTES) as u64)
        .sum()
}

/// Total GPU→CPU gradient bytes for an ordered batch with caching.
pub fn batch_store_bytes(sets: &[VisibilitySet]) -> u64 {
    plan_batch(sets).iter().map(CachePlan::store_bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(v: &[u32]) -> VisibilitySet {
        VisibilitySet::from_unsorted(v.to_vec())
    }

    #[test]
    fn plan_partitions_both_sets() {
        let prev = set(&[1, 2, 3, 4]);
        let cur = set(&[3, 4, 5, 6, 7]);
        let plan = CachePlan::new(&prev, &cur);
        assert_eq!(plan.cached.indices(), &[3, 4]);
        assert_eq!(plan.fetched.indices(), &[5, 6, 7]);
        assert_eq!(plan.grads_to_store.indices(), &[1, 2]);
        assert_eq!(plan.grads_to_keep.indices(), &[3, 4]);
        assert!(plan.is_consistent_with(&prev, &cur));
        assert!((plan.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn cold_plan_fetches_everything() {
        let cur = set(&[10, 20]);
        let plan = CachePlan::cold(&cur);
        assert_eq!(plan.fetched, cur);
        assert!(plan.cached.is_empty());
        assert_eq!(plan.fetch_bytes(), 2 * NON_CRITICAL_BYTES as u64);
        assert_eq!(plan.hit_rate(), 0.0);
    }

    #[test]
    fn batch_plans_include_flush() {
        let sets = vec![set(&[1, 2]), set(&[2, 3])];
        let plans = plan_batch(&sets);
        assert_eq!(plans.len(), 3);
        // Flush stores gradients of the last micro-batch that were not
        // already stored.
        assert_eq!(plans[2].grads_to_store, sets[1]);
        // Every gradient is stored exactly once across the batch.
        let stored: usize = plans.iter().map(|p| p.grads_to_store.len()).sum();
        let union = sets[0].union(&sets[1]);
        // {1} stored at transition, {2,3} at flush -> |{1}| + |{2,3}| = 3 = |union|.
        assert_eq!(stored, union.len());
    }

    #[test]
    fn caching_never_increases_traffic() {
        let sets = vec![set(&[1, 2, 3]), set(&[2, 3, 4]), set(&[3, 4, 5])];
        assert!(batch_fetch_bytes(&sets) <= batch_fetch_bytes_no_cache(&sets));
        // With identical consecutive sets the saving is maximal.
        let identical = vec![set(&[1, 2, 3]); 4];
        assert_eq!(
            batch_fetch_bytes(&identical),
            (3 * NON_CRITICAL_BYTES) as u64,
            "only the first micro-batch should fetch anything"
        );
    }

    #[test]
    fn disjoint_sets_get_no_benefit() {
        let sets = vec![set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        assert_eq!(batch_fetch_bytes(&sets), batch_fetch_bytes_no_cache(&sets));
    }

    proptest! {
        #[test]
        fn prop_plan_is_always_consistent(
            prev in proptest::collection::vec(0u32..100, 0..50),
            cur in proptest::collection::vec(0u32..100, 0..50)
        ) {
            let prev = VisibilitySet::from_unsorted(prev);
            let cur = VisibilitySet::from_unsorted(cur);
            let plan = CachePlan::new(&prev, &cur);
            prop_assert!(plan.is_consistent_with(&prev, &cur));
            prop_assert!(plan.hit_rate() >= 0.0 && plan.hit_rate() <= 1.0);
        }

        #[test]
        fn prop_every_touched_gradient_reaches_host_memory(
            raw in proptest::collection::vec(proptest::collection::vec(0u32..60, 1..30), 1..8)
        ) {
            // Every Gaussian touched by the batch must have its gradient
            // stored to host memory at least once (a Gaussian that leaves
            // and re-enters the working set is stored more than once; the
            // gradient-offload kernel accumulates in that case, §5.3).
            let sets: Vec<VisibilitySet> =
                raw.into_iter().map(VisibilitySet::from_unsorted).collect();
            let plans = plan_batch(&sets);
            let mut seen = VisibilitySet::new();
            let mut total_stored = 0usize;
            for p in &plans {
                seen = seen.union(&p.grads_to_store);
                total_stored += p.grads_to_store.len();
            }
            let mut union = VisibilitySet::new();
            for s in &sets {
                union = union.union(s);
            }
            prop_assert_eq!(&seen, &union);
            prop_assert!(total_stored >= union.len());
        }
    }
}
