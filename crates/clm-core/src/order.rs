//! Micro-batch ordering strategies (§4.2.3, Table 4).
//!
//! The order in which a batch's micro-batches are processed does not change
//! the computed gradients (they are accumulated before the optimiser step),
//! but it determines how effective Gaussian caching and overlapped CPU Adam
//! are.  The paper ablates four strategies, all reproduced here.

use crate::tsp::{solve, DistanceMatrix, TspConfig};
use gs_core::camera::Camera;
use gs_core::visibility::VisibilitySet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The ordering strategies of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingStrategy {
    /// Shuffle views uniformly at random (the default in existing systems).
    Random,
    /// Sort views by their camera-centre coordinate along the scene's
    /// principal axis.
    Camera,
    /// Sort views descending by the number of visible Gaussians, so CPU Adam
    /// can finalise more Gaussians earlier.
    GsCount,
    /// Maximise Gaussian overlap between successive views by solving a TSP
    /// over symmetric-difference distances (what CLM uses).
    Tsp,
}

impl OrderingStrategy {
    /// All strategies in the order the paper reports them.
    pub const ALL: [OrderingStrategy; 4] = [
        OrderingStrategy::Random,
        OrderingStrategy::Camera,
        OrderingStrategy::GsCount,
        OrderingStrategy::Tsp,
    ];
}

impl std::fmt::Display for OrderingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OrderingStrategy::Random => "Random Order",
            OrderingStrategy::Camera => "Camera Order",
            OrderingStrategy::GsCount => "GS Count Order",
            OrderingStrategy::Tsp => "TSP Order (CLM)",
        })
    }
}

/// Orders the micro-batches of one batch.
///
/// `cameras` and `visibility` describe the views of the batch (parallel
/// slices); the return value is a permutation of `0..n` giving the
/// processing order.
///
/// # Panics
/// Panics if the two slices have different lengths.
pub fn order_batch(
    strategy: OrderingStrategy,
    cameras: &[Camera],
    visibility: &[VisibilitySet],
    seed: u64,
) -> Vec<usize> {
    assert_eq!(
        cameras.len(),
        visibility.len(),
        "need one visibility set per camera"
    );
    let n = cameras.len();
    match strategy {
        OrderingStrategy::Random => {
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut StdRng::seed_from_u64(seed));
            order
        }
        OrderingStrategy::Camera => {
            let axis = principal_axis(cameras);
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| {
                let ca = camera_coordinate(&cameras[a], axis);
                let cb = camera_coordinate(&cameras[b], axis);
                ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
            });
            order
        }
        OrderingStrategy::GsCount => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| visibility[b].len().cmp(&visibility[a].len()));
            order
        }
        OrderingStrategy::Tsp => {
            let matrix = DistanceMatrix::from_visibility(visibility);
            solve(
                &matrix,
                &TspConfig {
                    seed,
                    ..Default::default()
                },
            )
            .tour
        }
    }
}

/// Picks the coordinate axis (0 = x, 1 = y, 2 = z) along which the camera
/// centres have the largest variance — the "scene's principal axis" used by
/// the Camera ordering.
fn principal_axis(cameras: &[Camera]) -> usize {
    if cameras.is_empty() {
        return 0;
    }
    let centers: Vec<[f32; 3]> = cameras.iter().map(|c| c.center().to_array()).collect();
    let n = centers.len() as f32;
    let mut best_axis = 0;
    let mut best_var = f32::MIN;
    for axis in 0..3 {
        let mean: f32 = centers.iter().map(|c| c[axis]).sum::<f32>() / n;
        let var: f32 = centers
            .iter()
            .map(|c| (c[axis] - mean).powi(2))
            .sum::<f32>()
            / n;
        if var > best_var {
            best_var = var;
            best_axis = axis;
        }
    }
    best_axis
}

fn camera_coordinate(camera: &Camera, axis: usize) -> f32 {
    camera.center().to_array()[axis]
}

/// Total parameter bytes fetched per batch for a given processing order
/// (with Gaussian caching) — the metric of Figure 14.
pub fn ordered_fetch_bytes(visibility: &[VisibilitySet], order: &[usize]) -> u64 {
    let ordered: Vec<VisibilitySet> = order.iter().map(|&i| visibility[i].clone()).collect();
    crate::cache::batch_fetch_bytes(&ordered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_core::camera::CameraIntrinsics;
    use gs_core::math::Vec3;

    fn cameras_on_line(n: usize) -> Vec<Camera> {
        (0..n)
            .map(|i| {
                Camera::look_at(
                    Vec3::new(i as f32 * 2.0, 1.0, -5.0),
                    Vec3::new(i as f32 * 2.0, 0.0, 0.0),
                    Vec3::Y,
                    CameraIntrinsics::simple(32, 24, 1.0),
                )
            })
            .collect()
    }

    fn overlapping_sets(n: usize) -> Vec<VisibilitySet> {
        (0..n)
            .map(|i| {
                VisibilitySet::from_unsorted(((i * 10) as u32..(i * 10 + 30) as u32).collect())
            })
            .collect()
    }

    #[test]
    fn every_strategy_returns_a_permutation() {
        let cameras = cameras_on_line(6);
        let sets = overlapping_sets(6);
        for strategy in OrderingStrategy::ALL {
            let order = order_batch(strategy, &cameras, &sets, 3);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..6).collect::<Vec<_>>(), "{strategy}");
        }
    }

    #[test]
    fn camera_order_sorts_along_principal_axis() {
        let cameras = cameras_on_line(5);
        let sets = overlapping_sets(5);
        // Shuffle-resistant: the cameras are already on a line along x, so
        // Camera order must return them monotonically in x.
        let order = order_batch(OrderingStrategy::Camera, &cameras, &sets, 0);
        let xs: Vec<f32> = order.iter().map(|&i| cameras[i].center().x).collect();
        assert!(xs.windows(2).all(|w| w[0] <= w[1]), "{xs:?}");
    }

    #[test]
    fn gs_count_order_is_descending_by_visibility() {
        let cameras = cameras_on_line(4);
        let sets = vec![
            VisibilitySet::from_unsorted((0..5).collect()),
            VisibilitySet::from_unsorted((0..50).collect()),
            VisibilitySet::from_unsorted((0..20).collect()),
            VisibilitySet::from_unsorted((0..35).collect()),
        ];
        let order = order_batch(OrderingStrategy::GsCount, &cameras, &sets, 0);
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let cameras = cameras_on_line(8);
        let sets = overlapping_sets(8);
        let a = order_batch(OrderingStrategy::Random, &cameras, &sets, 5);
        let b = order_batch(OrderingStrategy::Random, &cameras, &sets, 5);
        let c = order_batch(OrderingStrategy::Random, &cameras, &sets, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tsp_order_minimizes_fetch_bytes_among_strategies() {
        // Build a batch whose natural order is scrambled; TSP should fetch
        // no more than any other strategy (Figure 14's headline claim).
        let cameras = cameras_on_line(8);
        let mut sets = overlapping_sets(8);
        // Scramble the natural locality.
        sets.swap(0, 5);
        sets.swap(2, 7);
        let fetch = |strategy| {
            let order = order_batch(strategy, &cameras, &sets, 1);
            ordered_fetch_bytes(&sets, &order)
        };
        let tsp = fetch(OrderingStrategy::Tsp);
        for strategy in [OrderingStrategy::Random, OrderingStrategy::GsCount] {
            assert!(
                tsp <= fetch(strategy),
                "TSP ({tsp}) fetched more than {strategy}"
            );
        }
    }

    #[test]
    fn ordering_does_not_change_which_gaussians_are_touched() {
        // Correctness argument of §4.2.3: the union of visibility sets (and
        // hence the accumulated gradient support) is order-invariant.
        let cameras = cameras_on_line(6);
        let sets = overlapping_sets(6);
        let union_of = |order: &[usize]| {
            let mut u = VisibilitySet::new();
            for &i in order {
                u = u.union(&sets[i]);
            }
            u
        };
        let baseline = union_of(&(0..6).collect::<Vec<_>>());
        for strategy in OrderingStrategy::ALL {
            let order = order_batch(strategy, &cameras, &sets, 9);
            assert_eq!(union_of(&order), baseline, "{strategy}");
        }
    }

    #[test]
    #[should_panic(expected = "one visibility set per camera")]
    fn mismatched_inputs_panic() {
        let cameras = cameras_on_line(3);
        let sets = overlapping_sets(2);
        let _ = order_batch(OrderingStrategy::Random, &cameras, &sets, 0);
    }
}
