//! Functional trainers: real 3DGS training under each offloading strategy.
//!
//! This is the "does it actually train" layer of the reproduction: the same
//! differentiable renderer, loss and Adam optimiser are driven by four
//! different data-placement strategies — the GPU-only baseline, the enhanced
//! baseline with pre-rendering frustum culling, naive (ZeRO-Offload-style)
//! offloading, and CLM with attribute-wise offload, Gaussian caching,
//! micro-batch ordering and overlapped (early-finalised) CPU Adam.  All four
//! produce numerically equivalent training trajectories; they differ only in
//! how much data crosses the simulated PCIe link and how much GPU memory
//! they need, which is exactly the paper's claim.

use crate::offload::{OffloadedModel, GRADIENT_BYTES, NON_CRITICAL_BYTES};
use crate::order::{order_batch, OrderingStrategy};
use crate::perf::SystemKind;
use crate::schedule::FinalizationPlan;
use gs_core::camera::Camera;
use gs_core::gaussian::{GaussianModel, NON_CRITICAL_FLOATS};
use gs_core::visibility::VisibilitySet;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_optim::{AdamConfig, AdamWorkItem, GaussianAdam, GradientBuffer};
use gs_render::{
    l1_loss, parallel::parallel_map, psnr, render, render_backward, Image, RenderGradients,
    RenderOptions, DEFAULT_BAND_HEIGHT,
};
use gs_scene::{Dataset, DensifyConfig, DensifyReport, ResizeEvent};

/// When and how a training run densifies its model.
///
/// Real 3DGS training is not fixed-size: on a regular cadence the model
/// clones/splits high-gradient Gaussians and prunes transparent ones.  The
/// schedule makes that cadence part of the training configuration, so every
/// execution backend resizes at the **same** batch boundaries with the
/// **same** deterministic [`ResizeEvent`] — which is what keeps a densifying
/// run's trajectory bit-identical across backends.
#[derive(Debug, Clone, PartialEq)]
pub struct DensifySchedule {
    /// Densify every this many trained batches (a boundary sits **before**
    /// the batch at which `batches_trained` is a positive multiple of this;
    /// clamped to at least 1).
    pub every_batches: usize,
    /// Thresholds for each boundary's plan.  The boundary's RNG seed is
    /// `config.seed + batches_trained`, so distinct boundaries draw distinct
    /// (but deterministic) split offsets.
    pub config: DensifyConfig,
}

/// Configuration of a functional training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Which offloading strategy drives data placement.
    pub system: SystemKind,
    /// Micro-batch ordering strategy (CLM only; baselines use dataset order).
    pub ordering: OrderingStrategy,
    /// Images per batch.
    pub batch_size: usize,
    /// Adam hyper-parameters.
    pub adam: AdamConfig,
    /// Background colour composited behind the splats.
    pub background: [f32; 3],
    /// Enable precise Gaussian caching (CLM only; disable for ablations).
    pub gaussian_caching: bool,
    /// Enable overlapped (early-finalised) CPU Adam (CLM only).
    pub overlapped_adam: bool,
    /// Worker threads for the banded render forward/backward (clamped to at
    /// least 1).  Pure scheduling: the training trajectory is bit-identical
    /// for every value (`gs_render`'s band geometry never depends on it).
    pub compute_threads: usize,
    /// Accumulation band height for the banded renderer (0 = the renderer's
    /// default).  Unlike `compute_threads` this is **part of the numeric
    /// contract**: it fixes the grouping of floating-point accumulation, so
    /// runs compared bit-for-bit must use the same value on every backend.
    /// Autotuners derive it purely from host properties, never per run.
    pub band_height: u32,
    /// Second parallelism level: render the batch's views concurrently
    /// (each view serial inside) instead of band-parallel within one view.
    /// Views are independent until gradient accumulation, which
    /// [`Trainer::train_batch`] replays in the exact serial order, so this
    /// is bit-identical too.  Only takes effect when `compute_threads > 1`.
    pub view_parallel: bool,
    /// Data-parallel device count the batch's micro-batches are sharded
    /// across (1 = single device).  Micro-batch `i` runs on device `i mod
    /// num_devices`; the batch is processed in rounds of one micro-batch per
    /// device, with losses, gradient accumulations and finalised Adam steps
    /// replayed in the serial micro-batch order — the fixed-order reduction
    /// that keeps the trajectory bit-identical to the 1-device trainer for
    /// every shard count.  Pure scheduling, like `compute_threads`.
    pub num_devices: usize,
    /// Mid-training densification cadence (`None` = fixed-size model, the
    /// previous behaviour).  Resizes happen at batch boundaries, planned
    /// deterministically from the accumulated positional-gradient norms, so
    /// they are part of the numeric trajectory — identical for every
    /// execution backend.
    pub densify: Option<DensifySchedule>,
    /// RNG seed for ordering.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            system: SystemKind::Clm,
            ordering: OrderingStrategy::Tsp,
            batch_size: 4,
            adam: AdamConfig::default(),
            background: [0.0; 3],
            gaussian_caching: true,
            overlapped_adam: true,
            compute_threads: 1,
            band_height: DEFAULT_BAND_HEIGHT,
            view_parallel: false,
            num_devices: 1,
            densify: None,
            seed: 0,
        }
    }
}

/// What one training batch did.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Mean L1 loss over the batch's images.
    pub loss: f32,
    /// Number of distinct Gaussians touched by the batch.
    pub touched: usize,
    /// Parameter bytes moved CPU→GPU by this batch (0 for GPU-only systems).
    pub bytes_loaded: u64,
    /// Gradient bytes moved GPU→CPU by this batch.
    pub bytes_stored: u64,
    /// The micro-batch processing order used.
    pub order: Vec<usize>,
}

/// Everything a trainer decides **before** executing a batch: micro-batch
/// processing order, per-micro-batch fetch/store sets, finalisation groups
/// and the batch's PCIe traffic.
///
/// The plan is what lets the synchronous [`Trainer`] and the pipelined
/// runtime (`clm-runtime`) share one numeric execution path: both drive the
/// same [`Trainer::stage_microbatch`] / [`Trainer::process_microbatch`] /
/// [`Trainer::apply_finalized`] sequence over the same plan, so their
/// training trajectories are identical by construction — the runtime merely
/// interleaves the calls with discrete-event bookkeeping.
#[derive(Debug, Clone)]
pub struct BatchPlan {
    /// Processing order: `order[i]` is the view index of micro-batch `i`.
    pub order: Vec<usize>,
    /// Visibility sets in processing order.
    pub ordered_sets: Vec<VisibilitySet>,
    /// Finalisation groups for overlapped CPU Adam.
    pub finalization: FinalizationPlan,
    /// `fetched[i]` = Gaussians whose non-critical attributes micro-batch
    /// `i` must fetch from pinned host memory (empty for non-offloading
    /// systems).
    pub fetched: Vec<VisibilitySet>,
    /// `stored[i]` = Gaussians whose gradients are stored to host memory
    /// after micro-batch `i` completes (the last entry includes the batch's
    /// flush; empty for non-offloading systems).
    pub stored: Vec<VisibilitySet>,
    /// Gaussians untouched by the whole batch (the `F_0` group, updatable
    /// immediately under overlapped CPU Adam).
    pub untouched: VisibilitySet,
    /// Union of every micro-batch's visibility set.
    pub touched_union: VisibilitySet,
    /// Parameter bytes moved CPU→GPU by the batch.
    pub bytes_loaded: u64,
    /// Gradient bytes moved GPU→CPU by the batch.
    pub bytes_stored: u64,
    /// The densification resize applied at this batch's boundary, if one was
    /// due (filled by [`Trainer::resize_and_plan`]; the plan's culling and
    /// fetch sets are always computed against the **post-resize** model).
    pub resize: Option<ResizeEvent>,
}

impl BatchPlan {
    /// Number of micro-batches in the batch.
    pub fn num_microbatches(&self) -> usize {
        self.order.len()
    }

    /// Parameter bytes micro-batch `i` fetches over PCIe.
    pub fn fetch_bytes(&self, i: usize) -> u64 {
        (self.fetched[i].len() * NON_CRITICAL_BYTES) as u64
    }

    /// Gradient bytes stored to host memory after micro-batch `i`.
    pub fn store_bytes(&self, i: usize) -> u64 {
        (self.stored[i].len() * GRADIENT_BYTES) as u64
    }
}

/// A 3DGS trainer parameterised by an offloading strategy.
#[derive(Debug)]
pub struct Trainer {
    model: GaussianModel,
    offloaded: OffloadedModel,
    optimizer: GaussianAdam,
    config: TrainConfig,
    batches_trained: usize,
    /// Accumulated positional-gradient norm per Gaussian since the last
    /// densification boundary (the densification criterion).
    grad_norm_accum: Vec<f32>,
    /// Densification resizes applied so far.
    resize_events: usize,
    /// Boundary marker: the `batches_trained` value at which the last resize
    /// was applied, so a boundary fires exactly once even when
    /// [`pending_resize`](Self::pending_resize) is polled repeatedly.
    last_resize_batch: Option<usize>,
}

impl Trainer {
    /// Creates a trainer around an initial model.
    pub fn new(initial_model: GaussianModel, config: TrainConfig) -> Self {
        let offloaded = OffloadedModel::from_model(&initial_model);
        let optimizer = GaussianAdam::new(initial_model.len(), config.adam.clone());
        let grad_norm_accum = vec![0.0; initial_model.len()];
        Trainer {
            model: initial_model,
            offloaded,
            optimizer,
            config,
            batches_trained: 0,
            grad_norm_accum,
            resize_events: 0,
            last_resize_batch: None,
        }
    }

    /// Rebuilds a trainer from checkpointed state so training continues
    /// bit-identically to the uninterrupted run.  The offloaded host store
    /// is reassembled from the model (batch boundaries keep the two in
    /// sync, so the boundary snapshot loses nothing) with its traffic
    /// counters restored to `bytes_gathered` / `bytes_scattered`.
    ///
    /// # Panics
    /// Panics if the accumulator length does not match the model or the
    /// optimiser holds more rows than the model.
    #[allow(clippy::too_many_arguments)]
    pub fn from_checkpoint(
        model: GaussianModel,
        optimizer: GaussianAdam,
        config: TrainConfig,
        batches_trained: usize,
        grad_norm_accum: Vec<f32>,
        resize_events: usize,
        last_resize_batch: Option<usize>,
        bytes_gathered: u64,
        bytes_scattered: u64,
    ) -> Self {
        assert_eq!(
            grad_norm_accum.len(),
            model.len(),
            "gradient-norm accumulator does not match the model"
        );
        assert!(
            optimizer.len() <= model.len(),
            "optimiser holds more rows than the model"
        );
        let mut offloaded = OffloadedModel::from_model(&model);
        offloaded.restore_traffic_counters(bytes_gathered, bytes_scattered);
        Trainer {
            model,
            offloaded,
            optimizer,
            config,
            batches_trained,
            grad_norm_accum,
            resize_events,
            last_resize_batch,
        }
    }

    /// The current model.
    pub fn model(&self) -> &GaussianModel {
        &self.model
    }

    /// The attribute-wise offloaded parameter store (CLM's view of the
    /// model).
    pub fn offloaded(&self) -> &OffloadedModel {
        &self.offloaded
    }

    /// The optimiser (moment estimates and per-Gaussian step counts).
    pub fn optimizer(&self) -> &GaussianAdam {
        &self.optimizer
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Number of batches trained so far.
    pub fn batches_trained(&self) -> usize {
        self.batches_trained
    }

    /// Number of densification resizes applied so far.
    pub fn resize_events(&self) -> usize {
        self.resize_events
    }

    /// Accumulated positional-gradient norms since the last densification
    /// boundary (one per Gaussian; all zeros without a densify schedule).
    pub fn grad_norm_accum(&self) -> &[f32] {
        &self.grad_norm_accum
    }

    /// The `batches_trained` value at which the last densification resize
    /// was applied, if any (part of the boundary cursor a checkpoint must
    /// carry to keep [`pending_resize`](Self::pending_resize) exact).
    pub fn last_resize_batch(&self) -> Option<usize> {
        self.last_resize_batch
    }

    /// Changes the device count mid-run — the elastic-recovery path a
    /// sharded runtime takes after permanent device loss.  Only the config
    /// changes; batch plans from the next boundary on shard across the new
    /// count.
    ///
    /// # Panics
    /// Panics if `num_devices` is zero.
    pub fn set_num_devices(&mut self, num_devices: usize) {
        assert!(num_devices >= 1, "need at least one device");
        self.config.num_devices = num_devices;
    }

    /// Overrides the compute-thread knob (used when a restored config is
    /// re-adopted by a runtime that pins its own thread count).
    pub fn set_compute_threads(&mut self, compute_threads: usize) {
        self.config.compute_threads = compute_threads;
    }

    /// Overrides the accumulation band height (the runtime adoption path for
    /// an autotuned value).  Part of the numeric contract — change it only
    /// between runs that are compared bit-for-bit.
    pub fn set_band_height(&mut self, band_height: u32) {
        self.config.band_height = band_height;
    }

    /// The band height renders actually use: the configured value, or the
    /// renderer's default when the config holds the 0 sentinel.
    pub fn resolved_band_height(&self) -> u32 {
        if self.config.band_height == 0 {
            DEFAULT_BAND_HEIGHT
        } else {
            self.config.band_height
        }
    }

    /// The densification resize due **before** the next batch, if any.
    ///
    /// Pure: planning reads the model and the accumulated gradient norms but
    /// changes nothing, so a runtime may inspect the event (to size pinned
    /// buffers, repartition shards, cost the boundary) before committing to
    /// it with [`apply_resize`](Self::apply_resize).  A boundary is due when
    /// `batches_trained` is a positive multiple of the schedule's cadence
    /// and no resize was applied at this boundary yet; the plan's seed is
    /// `schedule.config.seed + batches_trained`, so each boundary draws its
    /// own deterministic split offsets.
    pub fn pending_resize(&self) -> Option<ResizeEvent> {
        let schedule = self.config.densify.as_ref()?;
        let every = schedule.every_batches.max(1);
        let b = self.batches_trained;
        if b == 0 || !b.is_multiple_of(every) || self.last_resize_batch == Some(b) {
            return None;
        }
        let config = DensifyConfig {
            seed: schedule.config.seed.wrapping_add(b as u64),
            ..schedule.config
        };
        Some(gs_scene::plan_resize(
            &self.model,
            &self.grad_norm_accum,
            &config,
        ))
    }

    /// Applies a planned resize at a batch boundary: the model rows
    /// clone/split/prune in the event's deterministic order, the optimiser
    /// state compacts (survivors keep their moments, appended rows start
    /// fresh), the offloaded host store resizes in place without re-cloning
    /// survivors, and the gradient-norm accumulator resets for the next
    /// densification interval.
    ///
    /// Runtimes must drain their in-flight lanes before calling this —
    /// every backend in this workspace scopes its lanes to one batch, so a
    /// batch boundary is always a safe drain point.
    ///
    /// # Panics
    /// Panics if the event was planned against a different model size.
    pub fn apply_resize(&mut self, event: &ResizeEvent) -> DensifyReport {
        let report = gs_scene::apply_resize(&mut self.model, event);
        self.optimizer.apply_resize(&event.pruned, self.model.len());
        self.offloaded.apply_resize(event, &self.model);
        // Fresh interval: norms restart from zero for survivors too (the
        // reference implementation resets its accumulators at each
        // densification), keeping the next boundary's plan independent of
        // how the rows were renumbered.
        self.grad_norm_accum.clear();
        self.grad_norm_accum.resize(self.model.len(), 0.0);
        self.resize_events += 1;
        self.last_resize_batch = Some(self.batches_trained);
        report
    }

    /// The batch-boundary entry point every execution backend shares:
    /// applies the pending densification resize (if one is due) and plans
    /// the batch against the **post-resize** model.  The applied event is
    /// recorded in the returned plan's [`resize`](BatchPlan::resize) field,
    /// so a runtime can re-lease staging buffers, repartition shards and
    /// cost the boundary from the plan alone.
    ///
    /// # Panics
    /// Panics if `cameras` is empty.
    pub fn resize_and_plan(&mut self, cameras: &[Camera]) -> BatchPlan {
        let resize = self.pending_resize();
        if let Some(event) = &resize {
            self.apply_resize(event);
        }
        let mut plan = self.plan_batch(cameras);
        plan.resize = resize;
        plan
    }

    /// Whether this trainer runs the overlapped (early-finalised) CPU Adam
    /// path (CLM with `overlapped_adam` enabled).
    pub fn overlapped(&self) -> bool {
        self.config.system == SystemKind::Clm && self.config.overlapped_adam
    }

    /// Plans one batch: frustum culling, micro-batch ordering, finalisation
    /// analysis and data-movement accounting.  Pure with respect to the
    /// model parameters; the plan for batch `k` depends on the ordering seed
    /// and [`batches_trained`](Self::batches_trained).
    ///
    /// # Panics
    /// Panics if `cameras` is empty.
    pub fn plan_batch(&self, cameras: &[Camera]) -> BatchPlan {
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        // 1. Frustum culling for every view.  For CLM this runs against the
        //    GPU-resident selection-critical attributes only.
        let sets: Vec<VisibilitySet> = cameras
            .iter()
            .map(|cam| gs_core::cull_frustum(&self.model, cam))
            .collect();

        // 2. Order the micro-batches.
        let order: Vec<usize> = match self.config.system {
            SystemKind::Clm => order_batch(
                self.config.ordering,
                cameras,
                &sets,
                self.config.seed + self.batches_trained as u64,
            ),
            _ => (0..cameras.len()).collect(),
        };
        let ordered_sets: Vec<VisibilitySet> = order.iter().map(|&i| sets[i].clone()).collect();
        let m = ordered_sets.len();

        // 3. Per-micro-batch fetch/store sets (CLM only; the other systems
        //    either keep everything resident or move the whole model, which
        //    the traffic accounting below handles wholesale).
        let empty = VisibilitySet::new();
        let (fetched, stored) = if self.config.system == SystemKind::Clm {
            if self.config.gaussian_caching {
                // The cache planner owns the transition algebra: plan `i`
                // fetches micro-batch `i`'s missing rows, and plan `i + 1`
                // (including the final flush) stores the gradients that
                // retire once micro-batch `i` has run.
                let plans = crate::cache::plan_batch(&ordered_sets);
                let fetched = plans[..m].iter().map(|p| p.fetched.clone()).collect();
                let stored = plans[1..]
                    .iter()
                    .map(|p| p.grads_to_store.clone())
                    .collect();
                (fetched, stored)
            } else {
                // Without caching every micro-batch reloads its whole
                // working set and retires all of its gradients.
                (ordered_sets.clone(), ordered_sets.clone())
            }
        } else {
            (vec![empty.clone(); m], vec![empty.clone(); m])
        };

        // 4. Finalisation plan for overlapped CPU Adam (CLM only).
        let finalization = FinalizationPlan::new(&ordered_sets);
        let mut touched_union = VisibilitySet::new();
        for s in &ordered_sets {
            touched_union = touched_union.union(s);
        }
        let all: VisibilitySet = (0..self.model.len() as u32).collect();
        let untouched = all.difference(&touched_union);

        // 5. Data-movement accounting for this batch.  For CLM the totals
        //    are just the per-micro-batch fetch/store sets summed; the
        //    other strategies move nothing or the whole model.
        let (bytes_loaded, bytes_stored) = match self.config.system {
            SystemKind::Baseline | SystemKind::EnhancedBaseline => (0, 0),
            SystemKind::NaiveOffload => {
                let all = self.model.len() as u64 * PARAMS_PER_GAUSSIAN as u64 * 4;
                (all, all)
            }
            SystemKind::Clm => (
                fetched
                    .iter()
                    .map(|s| (s.len() * NON_CRITICAL_BYTES) as u64)
                    .sum(),
                stored
                    .iter()
                    .map(|s| (s.len() * GRADIENT_BYTES) as u64)
                    .sum(),
            ),
        };

        BatchPlan {
            order,
            ordered_sets,
            finalization,
            fetched,
            stored,
            untouched,
            touched_union,
            bytes_loaded,
            bytes_stored,
            resize: None,
        }
    }

    /// Opens a batch.  Under overlapped CPU Adam the Gaussians untouched by
    /// the whole batch (`F_0`) are updated immediately — their gradient is
    /// already final (zero).
    pub fn begin_batch(&mut self, plan: &BatchPlan, grads: &GradientBuffer) {
        if self.overlapped() {
            self.optimizer
                .step_subset(&mut self.model, grads, plan.untouched.indices());
        }
    }

    /// The selective-loading kernel for micro-batch `micro_idx`: gathers the
    /// rows `plan.fetched[micro_idx]` from pinned host memory into
    /// `staging` (reusing its allocation), counting the transferred bytes.
    ///
    /// A pipelined runtime may run this ahead of the micro-batch's compute:
    /// within a batch no Adam update can touch a Gaussian before its last
    /// access, so prefetched rows never go stale
    /// ([`process_microbatch`](Self::process_microbatch) asserts this).
    pub fn stage_microbatch(
        &mut self,
        plan: &BatchPlan,
        micro_idx: usize,
        staging: &mut Vec<[f32; NON_CRITICAL_FLOATS]>,
    ) {
        if self.config.system == SystemKind::Clm {
            self.offloaded
                .gather_non_critical_into(plan.fetched[micro_idx].indices(), staging);
        } else {
            staging.clear();
        }
    }

    /// Executes micro-batch `micro_idx`: renders its view, accumulates the
    /// loss gradient into `grads`, and returns the view's L1 loss.
    ///
    /// # Panics
    /// Panics if a staged host row disagrees with the model the renderer
    /// sees — that would mean a prefetch raced with an optimiser update,
    /// which the finalisation schedule is supposed to make impossible.
    pub fn process_microbatch(
        &self,
        plan: &BatchPlan,
        micro_idx: usize,
        cameras: &[Camera],
        targets: &[Image],
        staging: &[[f32; NON_CRITICAL_FLOATS]],
        grads: &mut GradientBuffer,
    ) -> f32 {
        let (loss, render_grads) =
            self.render_microbatch(plan, micro_idx, cameras, targets, staging);
        grads.accumulate_render(&render_grads);
        loss
    }

    /// The compute half of [`process_microbatch`](Self::process_microbatch):
    /// renders micro-batch
    /// `micro_idx`'s view (band-parallel on `self.config.compute_threads`
    /// workers) and returns its L1 loss plus the raw render gradients
    /// **without** touching the shared gradient buffer.  Pure with respect
    /// to the trainer, so independent micro-batches may run concurrently;
    /// the caller must still accumulate the returned gradients in the
    /// serial micro-batch order to stay bit-identical.
    pub fn render_microbatch(
        &self,
        plan: &BatchPlan,
        micro_idx: usize,
        cameras: &[Camera],
        targets: &[Image],
        staging: &[[f32; NON_CRITICAL_FLOATS]],
    ) -> (f32, RenderGradients) {
        self.render_microbatch_with_threads(
            plan,
            micro_idx,
            cameras,
            targets,
            staging,
            self.config.compute_threads,
        )
    }

    /// [`render_microbatch`](Self::render_microbatch) with an explicit band
    /// thread count, so the view-parallel batch path can keep each view
    /// serial inside while the view level owns the workers.
    fn render_microbatch_with_threads(
        &self,
        plan: &BatchPlan,
        micro_idx: usize,
        cameras: &[Camera],
        targets: &[Image],
        staging: &[[f32; NON_CRITICAL_FLOATS]],
        compute_threads: usize,
    ) -> (f32, RenderGradients) {
        let view_idx = plan.order[micro_idx];
        let camera = &cameras[view_idx];
        let target = &targets[view_idx];
        let visible = match self.config.system {
            // The plain baseline feeds every Gaussian through the
            // kernels (fused culling); the others pre-cull.
            SystemKind::Baseline => None,
            _ => Some(plan.ordered_sets[micro_idx].indices().to_vec()),
        };
        if self.config.system == SystemKind::Clm {
            // The staged host rows must match the parameters the renderer
            // reads: a Gaussian is only updated after its last access, so
            // even rows prefetched several micro-batches ago stay current.
            assert_eq!(
                staging.len(),
                plan.fetched[micro_idx].len(),
                "staging buffer does not match the fetch plan"
            );
            for (&idx, row) in plan.fetched[micro_idx].indices().iter().zip(staging) {
                assert!(
                    *row == self.model.non_critical_row(idx as usize),
                    "staged row for gaussian {idx} went stale before its micro-batch ran"
                );
            }
        }
        let out = render(
            &self.model,
            camera,
            &RenderOptions {
                background: self.config.background,
                visible,
                compute_threads,
                band_height: self.resolved_band_height(),
            },
        );
        let loss = l1_loss(&out.image, target);
        let render_grads = render_backward(&self.model, camera, &out.aux, &loss.d_image);
        (loss.value, render_grads)
    }

    /// Applies the optimiser to every Gaussian finalised by micro-batch
    /// `micro_idx` (overlapped CPU Adam only; no-op otherwise).
    pub fn apply_finalized(&mut self, plan: &BatchPlan, micro_idx: usize, grads: &GradientBuffer) {
        if self.overlapped() {
            let group = plan.finalization.finalized_by(micro_idx);
            self.optimizer
                .step_subset(&mut self.model, grads, group.indices());
        }
    }

    /// Packs the CPU Adam work of one finalisation group into self-contained
    /// [`AdamWorkItem`]s from a **shared** borrow, so a threaded runtime can
    /// ship the expensive update math to a dedicated worker while the main
    /// thread keeps rendering.
    ///
    /// The finalisation schedule guarantees the packed Gaussians are never
    /// read again within the batch, so deferring the write-back
    /// ([`apply_adam_results`](Self::apply_adam_results)) to batch end is
    /// bit-identical to the synchronous [`apply_finalized`](Self::apply_finalized).
    pub fn pack_adam_group(&self, grads: &GradientBuffer, indices: &[u32]) -> Vec<AdamWorkItem> {
        self.optimizer.pack_subset(&self.model, grads, indices)
    }

    /// Merges computed Adam work items back into the model and optimiser
    /// state (pure copies; the math already ran on the worker).
    pub fn apply_adam_results(&mut self, items: &[AdamWorkItem]) {
        self.optimizer.apply_packed(&mut self.model, items);
    }

    /// Records host rows gathered by an external (worker-thread) copy, so
    /// the offloaded store's traffic counters stay consistent with the
    /// in-line gather path.
    pub fn note_gathered_rows(&mut self, rows: usize) {
        self.offloaded.note_gathered_rows(rows);
    }

    /// Closes a batch: runs the batch-end optimiser step for strategies
    /// without overlap, re-synchronises the offloaded store and returns the
    /// batch report.
    pub fn finish_batch(
        &mut self,
        plan: &BatchPlan,
        grads: &GradientBuffer,
        total_loss: f32,
    ) -> BatchReport {
        if !self.overlapped() {
            // CPU Adam (offloading systems) and GPU Adam (the baselines)
            // have identical dense semantics.
            self.optimizer.step_dense(&mut self.model, grads);
        }

        // Keep the offloaded store coherent with the updated model.
        self.offloaded.sync_from_model(&self.model);

        // Feed the densification criterion: accumulate each touched
        // Gaussian's positional-gradient norm.  The gradients are identical
        // across backends (they all share this buffer's accumulation order),
        // so the next boundary's plan is too.
        if self.config.densify.is_some() {
            debug_assert_eq!(self.grad_norm_accum.len(), grads.len());
            for idx in plan.touched_union.indices() {
                self.grad_norm_accum[*idx as usize] += grads.row(*idx).d_position.length();
            }
        }
        self.batches_trained += 1;

        BatchReport {
            loss: total_loss / plan.num_microbatches() as f32,
            touched: plan.touched_union.len(),
            bytes_loaded: plan.bytes_loaded,
            bytes_stored: plan.bytes_stored,
            order: plan.order.clone(),
        }
    }

    /// Trains one batch of posed images.
    ///
    /// This is the synchronous reference path: plan, then stage → process →
    /// finalise each micro-batch back-to-back.  The pipelined runtime in
    /// `clm-runtime` drives exactly the same calls interleaved with
    /// discrete-event scheduling, which is why the two are numerically
    /// identical.
    ///
    /// With `view_parallel` enabled (and `compute_threads > 1`) the views
    /// render concurrently instead, and with `num_devices > 1` the batch is
    /// sharded across data-parallel device rounds — both through the wave
    /// path (`train_batch_waves`), which is bit-identical to the serial
    /// path for any wave size.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn train_batch(&mut self, cameras: &[Camera], targets: &[Image]) -> BatchReport {
        assert_eq!(
            cameras.len(),
            targets.len(),
            "need one target image per camera"
        );
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        // Densification boundary first (if one is due), then plan against
        // the resized model — the same lifecycle every runtime backend runs.
        let plan = self.resize_and_plan(cameras);
        // One micro-batch per simulated device and round under sharding;
        // one per band worker under view parallelism.
        let wave = if self.config.num_devices > 1 {
            self.config.num_devices
        } else if self.config.view_parallel && self.config.compute_threads > 1 {
            self.config.compute_threads
        } else {
            1
        };
        if wave > 1 && plan.order.len() > 1 {
            return self.train_batch_waves(&plan, cameras, targets, wave);
        }
        let mut grads = GradientBuffer::for_model(&self.model);
        let mut staging = Vec::new();
        let mut total_loss = 0.0f32;

        self.begin_batch(&plan, &grads);
        for micro_idx in 0..plan.num_microbatches() {
            self.stage_microbatch(&plan, micro_idx, &mut staging);
            total_loss +=
                self.process_microbatch(&plan, micro_idx, cameras, targets, &staging, &mut grads);
            self.apply_finalized(&plan, micro_idx, &grads);
        }
        self.finish_batch(&plan, &grads, total_loss)
    }

    /// [`train_batch`](Self::train_batch) with measured wall-clock span
    /// capture: every phase of the **serial** reference path is timed on
    /// the host clock and pushed onto `timeline` as a measured span
    /// (batch-relative seconds), so the synchronous trainer can feed the
    /// same trace pipeline the scheduled backends do.  Span attribution
    /// mirrors the runtime engines' lanes: resize and planning on the
    /// scheduler lane, staging gathers on the communication lane, the
    /// render (forward + backward kernels) as a `Forward` span and the
    /// gradient accumulation as a `Backward` span on the compute lane, and
    /// optimiser work on the CPU Adam lane.  Always runs the serial loop —
    /// wave parallelism is bit-identical numerically, but its phases
    /// overlap and would not map one-to-one onto spans.
    ///
    /// # Panics
    /// Panics if `cameras` and `targets` differ in length or are empty.
    pub fn train_batch_spanned(
        &mut self,
        cameras: &[Camera],
        targets: &[Image],
        timeline: &mut sim_device::Timeline,
    ) -> BatchReport {
        use sim_device::{Lane, OpKind};
        use std::time::Instant;
        assert_eq!(
            cameras.len(),
            targets.len(),
            "need one target image per camera"
        );
        assert!(!cameras.is_empty(), "batch must contain at least one view");

        let t0 = Instant::now();
        let clock = || t0.elapsed().as_secs_f64();

        let resize = self.pending_resize();
        if let Some(event) = &resize {
            let s = clock();
            let rows = event.rows_changed() as u64;
            self.apply_resize(event);
            timeline.push_span(
                OpKind::Resize,
                Lane::CpuScheduler,
                s,
                clock(),
                0,
                rows,
                None,
            );
        }
        let s = clock();
        let mut plan = self.plan_batch(cameras);
        plan.resize = resize;
        timeline.push_span(
            OpKind::Scheduling,
            Lane::CpuScheduler,
            s,
            clock(),
            0,
            self.model.len() as u64,
            None,
        );

        let mut grads = GradientBuffer::for_model(&self.model);
        let mut staging = Vec::new();
        let mut total_loss = 0.0f32;

        if self.overlapped() {
            let s = clock();
            let rows = plan.untouched.len() as u64;
            self.begin_batch(&plan, &grads);
            timeline.push_span(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                s,
                clock(),
                0,
                rows,
                None,
            );
        } else {
            self.begin_batch(&plan, &grads);
        }
        for micro_idx in 0..plan.num_microbatches() {
            let mb = Some(micro_idx as u32);
            let s = clock();
            self.stage_microbatch(&plan, micro_idx, &mut staging);
            timeline.push_span(
                OpKind::LoadParams,
                Lane::GpuComm,
                s,
                clock(),
                plan.fetch_bytes(micro_idx),
                plan.fetched[micro_idx].len() as u64,
                mb,
            );
            let rows = plan.ordered_sets[micro_idx].len() as u64;
            let s = clock();
            let (loss, render_grads) =
                self.render_microbatch(&plan, micro_idx, cameras, targets, &staging);
            timeline.push_span(OpKind::Forward, Lane::GpuCompute, s, clock(), 0, rows, mb);
            total_loss += loss;
            let s = clock();
            grads.accumulate_render(&render_grads);
            timeline.push_span(OpKind::Backward, Lane::GpuCompute, s, clock(), 0, rows, mb);
            if self.overlapped() {
                let s = clock();
                let rows = plan.finalization.finalized_by(micro_idx).len() as u64;
                self.apply_finalized(&plan, micro_idx, &grads);
                timeline.push_span(
                    OpKind::CpuAdamUpdate,
                    Lane::CpuAdam,
                    s,
                    clock(),
                    0,
                    rows,
                    mb,
                );
            }
        }
        let s = clock();
        let overlapped = self.overlapped();
        let rows = self.model.len() as u64;
        let report = self.finish_batch(&plan, &grads, total_loss);
        if overlapped {
            // Batch close is store re-sync and accounting: host-side work.
            timeline.push_span(OpKind::Other, Lane::CpuScheduler, s, clock(), 0, 0, None);
        } else {
            // The dense optimiser step dominates the close for
            // non-overlapped strategies.
            timeline.push_span(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                s,
                clock(),
                0,
                rows,
                None,
            );
        }
        report
    }

    /// Executes one planned batch in **waves of `wave` views** rendered
    /// concurrently — the second parallelism level above the banded
    /// per-view kernels (`wave = compute_threads` under `view_parallel`)
    /// and the data-parallel device rounds of a sharded run (`wave =
    /// num_devices`, micro-batch `i` on device `i mod num_devices`).
    ///
    /// Bit-identical to the serial path by the same finalisation argument
    /// the pipelined backends rely on:
    ///
    /// * renders read only their own micro-batch's visibility set, and a
    ///   Gaussian finalised by micro-batch `i` is never in a later set, so
    ///   rendering every view against the wave-start parameters sees
    ///   exactly the values the serial path's interleaved renders see;
    /// * losses, gradient accumulations and `apply_finalized` steps are
    ///   then **replayed in the serial micro-batch order**, so every
    ///   floating-point reduction happens in the same order as the serial
    ///   path.  For a sharded run this is the fixed-device-order
    ///   all-reduce: round `r`'s per-device gradients join the shared
    ///   buffer as micro-batches `rD, rD+1, …` regardless of which device
    ///   finished first.
    ///
    /// At most `wave` staging buffers are ever live — the wave level must
    /// not quietly abandon the bounded-staging-memory property the prefetch
    /// machinery exists to provide.  Applying a wave's finalisation groups
    /// before the next wave renders is safe for the same reason the serial
    /// interleaving is: finalised Gaussians are never in any later
    /// micro-batch's visibility or fetch set.
    ///
    /// Each view renders with one band thread (the wave level owns the
    /// workers); band count vs. view count never changes the numerics, only
    /// the schedule.
    fn train_batch_waves(
        &mut self,
        plan: &BatchPlan,
        cameras: &[Camera],
        targets: &[Image],
        wave: usize,
    ) -> BatchReport {
        let m = plan.num_microbatches();
        let wave = wave.max(1);
        let mut grads = GradientBuffer::for_model(&self.model);
        self.begin_batch(plan, &grads);

        let mut total_loss = 0.0f32;
        let mut start = 0;
        while start < m {
            let end = (start + wave).min(m);
            // Stage this wave's micro-batches (same gathers, same traffic
            // accounting, same staleness assertions as the serial path).
            let mut staged: Vec<Vec<[f32; NON_CRITICAL_FLOATS]>> = Vec::with_capacity(end - start);
            for micro_idx in start..end {
                let mut buf = Vec::new();
                self.stage_microbatch(plan, micro_idx, &mut buf);
                staged.push(buf);
            }

            let trainer = &*self;
            let results: Vec<(f32, RenderGradients)> = parallel_map(wave, end - start, |offset| {
                trainer.render_microbatch_with_threads(
                    plan,
                    start + offset,
                    cameras,
                    targets,
                    &staged[offset],
                    1,
                )
            });

            // Replay the serial order: accumulate micro-batch i, then apply
            // its finalisation group, exactly as the sequential loop would.
            for (offset, (loss, render_grads)) in results.iter().enumerate() {
                total_loss += loss;
                grads.accumulate_render(render_grads);
                self.apply_finalized(plan, start + offset, &grads);
            }
            start = end;
        }
        self.finish_batch(plan, &grads, total_loss)
    }

    /// Trains over the whole dataset once (views grouped into batches in
    /// trajectory order), returning the per-batch reports.
    pub fn train_epoch(&mut self, dataset: &Dataset, targets: &[Image]) -> Vec<BatchReport> {
        assert_eq!(dataset.cameras.len(), targets.len());
        let batch = self.config.batch_size.max(1);
        let mut reports = Vec::new();
        let mut start = 0;
        while start < dataset.cameras.len() {
            let end = (start + batch).min(dataset.cameras.len());
            reports.push(self.train_batch(&dataset.cameras[start..end], &targets[start..end]));
            start = end;
        }
        reports
    }

    /// Mean PSNR of the current model over a set of posed images.
    pub fn evaluate_psnr(&self, cameras: &[Camera], targets: &[Image]) -> f32 {
        assert_eq!(cameras.len(), targets.len());
        let mut total = 0.0;
        for (camera, target) in cameras.iter().zip(targets) {
            let out = render(
                &self.model,
                camera,
                &RenderOptions {
                    background: self.config.background,
                    visible: None,
                    compute_threads: self.config.compute_threads,
                    band_height: self.resolved_band_height(),
                },
            );
            total += psnr(&out.image, target).min(60.0);
        }
        total / cameras.len() as f32
    }
}

/// Renders the ground-truth image of every view in a dataset (the stand-in
/// for the captured photographs).
pub fn ground_truth_images(dataset: &Dataset) -> Vec<Image> {
    dataset
        .cameras
        .iter()
        .map(|cam| {
            render(
                &dataset.ground_truth,
                cam,
                &RenderOptions {
                    background: [0.0; 3],
                    visible: None,
                    ..RenderOptions::default()
                },
            )
            .image
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{
        generate_dataset, init_from_point_cloud, DatasetConfig, InitConfig, SceneKind, SceneSpec,
    };

    fn tiny_setup() -> (Dataset, Vec<Image>, GaussianModel) {
        let dataset = generate_dataset(&SceneSpec::of(SceneKind::Bicycle), &DatasetConfig::tiny());
        let targets = ground_truth_images(&dataset);
        let init = init_from_point_cloud(
            &dataset.ground_truth,
            &InitConfig {
                num_gaussians: 150,
                ..Default::default()
            },
        );
        (dataset, targets, init)
    }

    fn config(system: SystemKind) -> TrainConfig {
        TrainConfig {
            system,
            batch_size: 4,
            ..Default::default()
        }
    }

    #[test]
    fn clm_matches_enhanced_baseline_bit_for_bit_with_identity_order() {
        // The paper's central correctness claim: offloading, caching and
        // overlapped CPU Adam change *where* data lives and *when* updates
        // run, never the numerics.  With the same micro-batch order the two
        // systems must produce identical parameters.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];

        let mut clm = Trainer::new(
            init.clone(),
            TrainConfig {
                system: SystemKind::Clm,
                ordering: OrderingStrategy::Camera,
                ..config(SystemKind::Clm)
            },
        );
        let mut enhanced = Trainer::new(init, config(SystemKind::EnhancedBaseline));

        // Force identical processing order by using the dataset order for
        // both: Camera ordering on an orbit dataset can permute, so instead
        // run CLM with the GPU-only order by disabling reordering through a
        // single-view-per-batch loop.
        for i in 0..4 {
            let r1 = clm.train_batch(&cams[i..i + 1], &tgts[i..i + 1]);
            let r2 = enhanced.train_batch(&cams[i..i + 1], &tgts[i..i + 1]);
            assert!((r1.loss - r2.loss).abs() < 1e-6);
        }
        assert_eq!(clm.model(), enhanced.model());
    }

    #[test]
    fn overlapped_adam_equals_batch_end_adam() {
        // §4.2.2: updating each Gaussian as soon as it is finalised must be
        // identical to updating everything after the batch.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let base = TrainConfig {
            system: SystemKind::Clm,
            ordering: OrderingStrategy::Camera,
            ..Default::default()
        };
        let mut overlapped = Trainer::new(
            init.clone(),
            TrainConfig {
                overlapped_adam: true,
                ..base.clone()
            },
        );
        let mut batch_end = Trainer::new(
            init,
            TrainConfig {
                overlapped_adam: false,
                ..base
            },
        );
        overlapped.train_batch(cams, tgts);
        batch_end.train_batch(cams, tgts);
        assert_eq!(overlapped.model(), batch_end.model());
    }

    #[test]
    fn caching_does_not_change_results_only_traffic() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let base = TrainConfig {
            system: SystemKind::Clm,
            ordering: OrderingStrategy::Tsp,
            ..Default::default()
        };
        let mut with_cache = Trainer::new(
            init.clone(),
            TrainConfig {
                gaussian_caching: true,
                ..base.clone()
            },
        );
        let mut without_cache = Trainer::new(
            init,
            TrainConfig {
                gaussian_caching: false,
                ..base
            },
        );
        let r_cache = with_cache.train_batch(cams, tgts);
        let r_plain = without_cache.train_batch(cams, tgts);
        assert_eq!(with_cache.model(), without_cache.model());
        assert!(r_cache.bytes_loaded <= r_plain.bytes_loaded);
    }

    #[test]
    fn clm_moves_far_fewer_bytes_than_naive_offloading() {
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let mut clm = Trainer::new(init.clone(), config(SystemKind::Clm));
        let mut naive = Trainer::new(init, config(SystemKind::NaiveOffload));
        let r_clm = clm.train_batch(cams, tgts);
        let r_naive = naive.train_batch(cams, tgts);
        assert!(
            r_clm.bytes_loaded < r_naive.bytes_loaded,
            "CLM {} vs naive {}",
            r_clm.bytes_loaded,
            r_naive.bytes_loaded
        );
        // Both strategies follow the same training trajectory.  CLM's TSP
        // ordering changes the floating-point accumulation order, so allow
        // tiny round-off differences.
        for (a, b) in clm
            .model()
            .positions()
            .iter()
            .zip(naive.model().positions())
        {
            assert!((*a - *b).length() < 1e-3, "{a:?} vs {b:?}");
        }
        for (a, b) in clm
            .model()
            .opacity_logits()
            .iter()
            .zip(naive.model().opacity_logits())
        {
            assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn training_reduces_loss_and_improves_psnr() {
        let (dataset, targets, init) = tiny_setup();
        let mut trainer = Trainer::new(
            init,
            TrainConfig {
                batch_size: 6,
                ..config(SystemKind::Clm)
            },
        );
        let before = trainer.evaluate_psnr(&dataset.cameras, &targets);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..6 {
            let reports = trainer.train_epoch(&dataset, &targets);
            let mean: f32 = reports.iter().map(|r| r.loss).sum::<f32>() / reports.len() as f32;
            first_loss.get_or_insert(mean);
            last_loss = mean;
        }
        let after = trainer.evaluate_psnr(&dataset.cameras, &targets);
        assert!(
            last_loss < first_loss.unwrap(),
            "loss did not decrease: {first_loss:?} -> {last_loss}"
        );
        assert!(after > before, "PSNR did not improve: {before} -> {after}");
    }

    #[test]
    fn parallel_compute_never_changes_training() {
        // Both parallelism levels — banded within a view and view-parallel
        // within a batch — are pure scheduling: batch reports and final
        // parameters must equal the serial trainer's bit for bit.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let base = TrainConfig {
            system: SystemKind::Clm,
            batch_size: 6,
            ..Default::default()
        };
        let mut serial = Trainer::new(init.clone(), base.clone());
        let mut banded = Trainer::new(
            init.clone(),
            TrainConfig {
                compute_threads: 4,
                ..base.clone()
            },
        );
        let mut view_parallel = Trainer::new(
            init,
            TrainConfig {
                compute_threads: 3,
                view_parallel: true,
                ..base
            },
        );
        let r_serial = serial.train_batch(cams, tgts);
        let r_banded = banded.train_batch(cams, tgts);
        let r_views = view_parallel.train_batch(cams, tgts);
        assert_eq!(r_serial, r_banded);
        assert_eq!(r_serial, r_views);
        assert_eq!(serial.model(), banded.model());
        assert_eq!(serial.model(), view_parallel.model());
    }

    #[test]
    fn sharded_device_rounds_never_change_training() {
        // Data-parallel sharding is the third pure-scheduling axis: micro-
        // batches processed in rounds of `num_devices` with the fixed-order
        // reduction must match the 1-device trainer bit for bit.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let base = TrainConfig {
            system: SystemKind::Clm,
            batch_size: 6,
            ..Default::default()
        };
        let mut serial = Trainer::new(init.clone(), base.clone());
        let r_serial = serial.train_batch(cams, tgts);
        for devices in [2usize, 3, 4, 8] {
            let mut sharded = Trainer::new(
                init.clone(),
                TrainConfig {
                    num_devices: devices,
                    ..base.clone()
                },
            );
            let r_sharded = sharded.train_batch(cams, tgts);
            assert_eq!(r_serial, r_sharded, "{devices} devices");
            assert_eq!(serial.model(), sharded.model(), "{devices} devices");
        }
    }

    #[test]
    fn batch_report_orders_are_permutations() {
        let (dataset, targets, init) = tiny_setup();
        let mut trainer = Trainer::new(init, config(SystemKind::Clm));
        let report = trainer.train_batch(&dataset.cameras[..5], &targets[..5]);
        let mut order = report.order.clone();
        order.sort_unstable();
        assert_eq!(order, (0..5).collect::<Vec<_>>());
        assert!(report.touched > 0);
        assert_eq!(trainer.batches_trained(), 1);
    }

    fn densify_config(every: usize) -> TrainConfig {
        TrainConfig {
            system: SystemKind::Clm,
            batch_size: 4,
            densify: Some(DensifySchedule {
                every_batches: every,
                config: gs_scene::DensifyConfig {
                    grad_threshold: 1.0e-4,
                    max_gaussians: 200,
                    ..Default::default()
                },
            }),
            ..Default::default()
        }
    }

    #[test]
    fn densify_schedule_resizes_the_model_mid_run() {
        let (dataset, targets, init) = tiny_setup();
        let before = init.len();
        let mut trainer = Trainer::new(init, densify_config(1));
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        assert!(
            trainer.pending_resize().is_none(),
            "no boundary before batch 0"
        );
        trainer.train_batch(cams, tgts);
        let pending = trainer
            .pending_resize()
            .expect("boundary due after batch 1");
        assert!(
            !pending.is_noop(),
            "trained gradients must trigger densification"
        );
        trainer.train_batch(cams, tgts);
        assert_eq!(trainer.resize_events(), 1);
        assert_ne!(trainer.model().len(), before, "model resized mid-run");
        // Aligned state followed the resize.
        assert_eq!(trainer.optimizer().len(), trainer.model().len());
        assert_eq!(trainer.offloaded().len(), trainer.model().len());
        assert_eq!(trainer.grad_norm_accum().len(), trainer.model().len());
    }

    #[test]
    fn pending_resize_fires_exactly_once_per_boundary() {
        let (dataset, targets, init) = tiny_setup();
        let mut trainer = Trainer::new(init, densify_config(2));
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        trainer.train_batch(cams, tgts);
        assert!(trainer.pending_resize().is_none(), "cadence 2: not yet");
        trainer.train_batch(cams, tgts);
        let a = trainer.pending_resize().expect("boundary due");
        let b = trainer.pending_resize().expect("polling is pure");
        assert_eq!(a, b, "repeated polls plan the same event");
        trainer.apply_resize(&a);
        assert!(
            trainer.pending_resize().is_none(),
            "an applied boundary must not fire again"
        );
        assert_eq!(trainer.resize_events(), 1);
    }

    #[test]
    fn densifying_trajectory_is_identical_across_offload_systems() {
        // Densification is planned from the shared gradient trajectory, so
        // systems that are bit-identical without it stay bit-identical with
        // it — resize boundaries included.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..4];
        let tgts = &targets[..4];
        let with_system = |system: SystemKind| TrainConfig {
            ordering: OrderingStrategy::Camera,
            ..TrainConfig {
                system,
                ..densify_config(1)
            }
        };
        let mut clm = Trainer::new(init.clone(), with_system(SystemKind::Clm));
        let mut enhanced = Trainer::new(init, with_system(SystemKind::EnhancedBaseline));
        for i in 0..4 {
            let r1 = clm.train_batch(&cams[i..i + 1], &tgts[i..i + 1]);
            let r2 = enhanced.train_batch(&cams[i..i + 1], &tgts[i..i + 1]);
            assert_eq!(r1.order, r2.order);
            assert!((r1.loss - r2.loss).abs() < 1e-6);
        }
        assert_eq!(clm.resize_events(), enhanced.resize_events());
        assert!(clm.resize_events() >= 1, "run must actually densify");
        assert_eq!(clm.model(), enhanced.model());
    }

    #[test]
    fn densifying_waves_match_the_serial_trainer() {
        // The pure-scheduling axes (waves, devices) must stay bit-identical
        // when the model resizes mid-run.
        let (dataset, targets, init) = tiny_setup();
        let cams = &dataset.cameras[..6];
        let tgts = &targets[..6];
        let base = TrainConfig {
            batch_size: 6,
            ..densify_config(1)
        };
        let mut serial = Trainer::new(init.clone(), base.clone());
        let mut sharded = Trainer::new(
            init,
            TrainConfig {
                num_devices: 3,
                ..base
            },
        );
        for _ in 0..3 {
            let a = serial.train_batch(cams, tgts);
            let b = sharded.train_batch(cams, tgts);
            assert_eq!(a, b);
        }
        assert!(serial.resize_events() >= 1);
        assert_eq!(serial.resize_events(), sharded.resize_events());
        assert_eq!(serial.model(), sharded.model());
    }

    #[test]
    #[should_panic(expected = "one target image per camera")]
    fn mismatched_batch_inputs_panic() {
        let (dataset, targets, init) = tiny_setup();
        let mut trainer = Trainer::new(init, config(SystemKind::Clm));
        let _ = trainer.train_batch(&dataset.cameras[..3], &targets[..2]);
    }
}
