//! Analytic performance and memory model (the "paper-scale" layer).
//!
//! The functional trainer in [`crate::train`] runs real training on
//! reduced-scale synthetic scenes.  The experiments in the paper's
//! evaluation, however, are about *full-scale* behaviour: how many Gaussians
//! fit before OOM (Figure 8), what the GPU memory breakdown looks like
//! (Figure 10), training throughput (Figures 11–12), runtime decomposition
//! (Figure 13), communication volume (Figure 14), idle rate (Figure 15) and
//! hardware utilisation (Table 7).  All of those are functions of
//!
//! * the device capacities/rates ([`sim_device::DeviceProfile`]),
//! * the scene's visibility structure (sparsity ρ, inter-view overlap,
//!   finalisation profile) — measured on the synthetic datasets and
//!   summarised in a [`SceneProfile`], and
//! * the offloading strategy.
//!
//! This module evaluates those functions: it builds the event timeline a
//! training batch would produce under each strategy and derives every
//! quantity the figures report.

use crate::cache::plan_batch;
use crate::offload::{GRADIENT_BYTES, NON_CRITICAL_BYTES};
use crate::order::{order_batch, OrderingStrategy};
use crate::schedule::FinalizationPlan;
use gs_core::visibility::VisibilitySet;
use gs_core::PARAMS_PER_GAUSSIAN;
use gs_scene::Dataset;
use sim_device::{DeviceProfile, Lane, MemoryCategory, MemoryPool, OpKind, Timeline};

/// The four systems compared throughout the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Grendel-GS single-GPU mode with gsplat kernels (fused culling).
    Baseline,
    /// Baseline plus pre-rendering frustum culling (§5.1).
    EnhancedBaseline,
    /// ZeRO-Offload-style offloading (Figure 3): load everything, compute,
    /// store everything, CPU Adam, sequentially.
    NaiveOffload,
    /// The full CLM system.
    Clm,
}

impl SystemKind {
    /// All systems in the order the paper's figures list them.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::Baseline,
        SystemKind::EnhancedBaseline,
        SystemKind::NaiveOffload,
        SystemKind::Clm,
    ];
}

impl std::fmt::Display for SystemKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SystemKind::Baseline => "Baseline",
            SystemKind::EnhancedBaseline => "Enhanced Baseline",
            SystemKind::NaiveOffload => "Naive Offloading",
            SystemKind::Clm => "CLM",
        })
    }
}

/// Bytes of model state kept in GPU memory per Gaussian for each system.
///
/// * Baselines keep the full training state (59 params × 4 copies).
/// * Naive offloading keeps parameters + gradients on the GPU during the
///   step (optimiser state lives on the CPU).
/// * CLM keeps only the selection-critical attributes (10 floats) with their
///   training state resident; everything else is offloaded.
pub fn gpu_model_state_bytes_per_gaussian(system: SystemKind) -> u64 {
    match system {
        SystemKind::Baseline | SystemKind::EnhancedBaseline => 59 * 4 * 4,
        SystemKind::NaiveOffload => 59 * 4 * 2,
        SystemKind::Clm => 10 * 4 * 4,
    }
}

/// Activation bytes per Gaussian actually processed by the rasteriser.
pub const ACTIVATION_BYTES_PER_GAUSSIAN: u64 = 250;
/// Activation bytes per output pixel (image, gradients, loss buffers).
pub const ACTIVATION_BYTES_PER_PIXEL: u64 = 350;
/// Fixed GPU overhead (CUDA context, cub workspaces, ...).
pub const FIXED_OVERHEAD_BYTES: u64 = 500 * 1024 * 1024;
/// Per-Gaussian pinned host memory CLM needs (non-critical parameters plus
/// the full gradient row, §6.4 / Table 6).
pub const PINNED_BYTES_PER_GAUSSIAN: u64 = (NON_CRITICAL_BYTES + GRADIENT_BYTES) as u64;

/// Summary of one scene's visibility structure, measured on a synthetic
/// dataset and assumed scale-invariant (sparsity is a geometric property of
/// the trajectory, not of the Gaussian count).
#[derive(Debug, Clone, PartialEq)]
pub struct SceneProfile {
    /// Scene name (for reports).
    pub name: String,
    /// Output resolution (width, height) the paper uses for this scene.
    pub resolution: (u32, u32),
    /// Training batch size (Table 3).
    pub batch_size: usize,
    /// Mean per-view sparsity ρ.
    pub rho_mean: f64,
    /// Maximum per-view sparsity ρ.
    pub rho_max: f64,
    /// Mean fraction of a micro-batch's working set served from the cache
    /// under the chosen ordering (0 disables caching benefits).
    pub cache_hit_rate: f64,
    /// Mean fraction of touched Gaussians finalised before the last
    /// micro-batch (the overlappable CPU Adam share).
    pub overlap_fraction: f64,
}

impl SceneProfile {
    /// Measures a scene profile from a synthetic dataset, batching the views
    /// in trajectory order and ordering each batch with `strategy`.
    pub fn measure(dataset: &Dataset, strategy: OrderingStrategy, seed: u64) -> SceneProfile {
        let sets = dataset.visibility_sets(&dataset.ground_truth);
        let n = dataset.ground_truth.len().max(1);
        let batch_size = dataset.spec.batch_size.min(sets.len()).max(1);

        let rho: Vec<f64> = sets.iter().map(|s| s.len() as f64 / n as f64).collect();
        let rho_mean = rho.iter().sum::<f64>() / rho.len().max(1) as f64;
        let rho_max = rho.iter().cloned().fold(0.0, f64::max);

        let mut hit_rates = Vec::new();
        let mut overlaps = Vec::new();
        for (batch_idx, chunk) in sets.chunks(batch_size).enumerate() {
            if chunk.len() < 2 {
                continue;
            }
            let cameras =
                &dataset.cameras[batch_idx * batch_size..batch_idx * batch_size + chunk.len()];
            let order = order_batch(strategy, cameras, chunk, seed + batch_idx as u64);
            let ordered: Vec<VisibilitySet> = order.iter().map(|&i| chunk[i].clone()).collect();
            let plans = plan_batch(&ordered);
            let fetched: usize = plans.iter().map(|p| p.fetched.len()).sum();
            let total: usize = ordered.iter().map(VisibilitySet::len).sum();
            if total > 0 {
                hit_rates.push(1.0 - fetched as f64 / total as f64);
            }
            overlaps.push(FinalizationPlan::new(&ordered).overlap_fraction());
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        SceneProfile {
            name: dataset.spec.kind.to_string(),
            resolution: dataset.spec.full_resolution,
            batch_size: dataset.spec.batch_size,
            rho_mean,
            rho_max,
            cache_hit_rate: mean(&hit_rates),
            overlap_fraction: mean(&overlaps),
        }
    }

    /// Pixels per rendered image at this scene's resolution.
    pub fn pixels(&self) -> u64 {
        self.resolution.0 as u64 * self.resolution.1 as u64
    }

    /// The scene profile implied by the numbers the paper itself reports:
    /// sparsity from Figure 5 / the Figure 14 communication volumes, cache
    /// hit rates from the Figure 14 "No Cache" vs "TSP" gap, and Table 3's
    /// resolutions and batch sizes.  Use this for paper-scale analytic
    /// experiments; use [`SceneProfile::measure`] to derive the same
    /// quantities from a synthetic dataset instead.
    pub fn paper_reference(kind: gs_scene::SceneKind) -> SceneProfile {
        use gs_scene::SceneKind as K;
        let spec = gs_scene::SceneSpec::of(kind);
        let (rho_mean, rho_max, cache_hit_rate, overlap_fraction) = match kind {
            K::Bicycle => (0.185, 0.30, 0.33, 0.45),
            K::Rubble => (0.099, 0.15, 0.30, 0.50),
            K::Alameda => (0.129, 0.20, 0.31, 0.50),
            K::Ithaca => (0.041, 0.07, 0.42, 0.60),
            K::BigCity => (0.0039, 0.0106, 0.14, 0.60),
        };
        SceneProfile {
            name: kind.to_string(),
            resolution: spec.full_resolution,
            batch_size: spec.batch_size,
            rho_mean,
            rho_max,
            cache_hit_rate,
            overlap_fraction,
        }
    }
}

/// GPU memory estimate for one system/scene/model-size combination,
/// decomposed the way Figure 10 reports it.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MemoryEstimate {
    /// Gaussian model state resident in GPU memory.
    pub model_state: u64,
    /// Activation memory of the forward/backward pass.
    pub activation: u64,
    /// Transfer (double) buffers used by offloading systems.
    pub buffers: u64,
    /// Fixed overheads.
    pub other: u64,
}

impl MemoryEstimate {
    /// Total bytes.
    pub fn total(&self) -> u64 {
        self.model_state + self.activation + self.buffers + self.other
    }

    /// The "others" bar of Figure 10 (everything that is not model state).
    pub fn others(&self) -> u64 {
        self.activation + self.buffers + self.other
    }
}

/// Estimates the GPU memory a system needs to train `n_gaussians` on a
/// scene.
pub fn gpu_memory_required(
    system: SystemKind,
    n_gaussians: u64,
    scene: &SceneProfile,
) -> MemoryEstimate {
    let working_set = (scene.rho_max * n_gaussians as f64).ceil() as u64;
    let processed = match system {
        // Fused culling feeds every Gaussian through the kernels.
        SystemKind::Baseline => n_gaussians,
        _ => working_set,
    };
    let buffers = match system {
        SystemKind::Clm => {
            // Double-buffered working-set parameters plus one gradient
            // buffer (§5.3 controls their coexistence).
            2 * working_set * NON_CRITICAL_BYTES as u64 + working_set * GRADIENT_BYTES as u64
        }
        _ => 0,
    };
    MemoryEstimate {
        model_state: n_gaussians * gpu_model_state_bytes_per_gaussian(system),
        activation: processed * ACTIVATION_BYTES_PER_GAUSSIAN
            + scene.pixels() * ACTIVATION_BYTES_PER_PIXEL,
        buffers,
        other: FIXED_OVERHEAD_BYTES,
    }
}

/// Pinned host memory CLM needs for `n_gaussians` (Table 6).
pub fn pinned_memory_required(n_gaussians: u64) -> u64 {
    n_gaussians * PINNED_BYTES_PER_GAUSSIAN
}

/// Largest model (in Gaussians) a system can train on `profile` without
/// running out of GPU memory, found by binary search over the memory model
/// (Figure 8).  Offloading systems are additionally limited by host memory.
pub fn max_trainable_gaussians(
    system: SystemKind,
    profile: &DeviceProfile,
    scene: &SceneProfile,
) -> u64 {
    let usable = profile.usable_gpu_memory();
    let fits = |n: u64| -> bool {
        if gpu_memory_required(system, n, scene).total() > usable {
            return false;
        }
        match system {
            SystemKind::NaiveOffload | SystemKind::Clm => {
                pinned_memory_required(n) <= profile.host_memory_bytes
            }
            _ => true,
        }
    };
    if !fits(1) {
        return 0;
    }
    let mut lo = 1u64;
    let mut hi = 1u64;
    while fits(hi) {
        hi *= 2;
        if hi > 1 << 40 {
            break;
        }
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Per-micro-batch quantities the pipeline simulator needs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MicrobatchStats {
    /// Gaussians in the micro-batch's working set `|S_i|`.
    pub working_set: u64,
    /// Gaussians fetched from host memory (`|S_i \ S_{i-1}|` with caching).
    pub fetched: u64,
    /// Gaussians whose gradients are stored to host memory after this
    /// micro-batch.
    pub grads_stored: u64,
    /// Gaussians finalised by this micro-batch (their CPU Adam can start).
    pub finalized: u64,
}

/// Derives per-micro-batch stats from actual ordered visibility sets
/// (used when a real dataset is available).
pub fn microbatch_stats_from_sets(ordered_sets: &[VisibilitySet]) -> Vec<MicrobatchStats> {
    let plans = plan_batch(ordered_sets);
    let finalization = FinalizationPlan::new(ordered_sets);
    let mut out = Vec::with_capacity(ordered_sets.len());
    for i in 0..ordered_sets.len() {
        // The gradients of micro-batch i that leave the GPU do so during the
        // *next* transition (plans[i + 1]).
        out.push(MicrobatchStats {
            working_set: ordered_sets[i].len() as u64,
            fetched: plans[i].fetched.len() as u64,
            grads_stored: plans[i + 1].grads_to_store.len() as u64,
            finalized: finalization.finalized_by(i).len() as u64,
        });
    }
    out
}

/// Synthesises per-micro-batch stats for a full-scale model from a scene
/// profile (used when evaluating at paper scale, where enumerating 100 M
/// Gaussians per view is unnecessary).
pub fn synthetic_microbatch_stats(
    scene: &SceneProfile,
    n_gaussians: u64,
    with_cache: bool,
) -> Vec<MicrobatchStats> {
    let b = scene.batch_size.max(1);
    let working_set = (scene.rho_mean * n_gaussians as f64).ceil() as u64;
    let hit = if with_cache {
        scene.cache_hit_rate
    } else {
        0.0
    };
    let total_touched = working_set + (b as u64 - 1) * (working_set as f64 * (1.0 - hit)) as u64;
    let overlappable = (total_touched as f64 * scene.overlap_fraction) as u64;
    let per_early = if b > 1 {
        overlappable / (b as u64 - 1)
    } else {
        0
    };
    let mut stats = Vec::with_capacity(b);
    for i in 0..b {
        let fetched = if i == 0 {
            working_set
        } else {
            (working_set as f64 * (1.0 - hit)).ceil() as u64
        };
        let finalized = if i + 1 == b {
            total_touched.saturating_sub(per_early * (b as u64 - 1))
        } else {
            per_early
        };
        stats.push(MicrobatchStats {
            working_set,
            fetched,
            grads_stored: fetched,
            finalized,
        });
    }
    stats
}

/// Outcome of simulating one training batch.
#[derive(Debug, Clone)]
pub struct BatchSimulation {
    /// Which system was simulated.
    pub system: SystemKind,
    /// The executed timeline.
    pub timeline: Timeline,
    /// Images processed (the batch size).
    pub images: usize,
    /// Training throughput in images per second.
    pub throughput: f64,
    /// Bytes of parameters moved CPU→GPU.
    pub bytes_loaded: u64,
    /// Bytes of gradients moved GPU→CPU.
    pub bytes_stored: u64,
    /// CPU Adam time that could not be hidden behind GPU work (the trailing
    /// time of Table 5b).
    pub adam_trailing_time: f64,
    /// Time spent on scheduling (culling + ordering).
    pub scheduling_time: f64,
}

impl BatchSimulation {
    /// Total communication volume per batch (the Figure 14 metric is the
    /// CPU→GPU direction only; this helper reports both).
    pub fn total_comm_bytes(&self) -> u64 {
        self.bytes_loaded + self.bytes_stored
    }
}

/// Simulates one training batch of `system` on `device` for a model of
/// `n_gaussians`, using per-micro-batch statistics `stats` (one entry per
/// image in the batch).
///
/// # Panics
/// Panics if `stats` is empty.
pub fn simulate_batch(
    system: SystemKind,
    device: &DeviceProfile,
    scene: &SceneProfile,
    n_gaussians: u64,
    stats: &[MicrobatchStats],
) -> BatchSimulation {
    assert!(!stats.is_empty(), "need at least one micro-batch");
    let pixels = scene.pixels();
    let mut timeline = Timeline::new();
    let params_per_gaussian = PARAMS_PER_GAUSSIAN as u64;

    match system {
        SystemKind::Baseline | SystemKind::EnhancedBaseline => {
            let mut prev = None;
            for s in stats {
                let processed = if system == SystemKind::Baseline {
                    n_gaussians
                } else {
                    s.working_set
                };
                let deps: Vec<_> = prev.into_iter().collect();
                let fwd = timeline.push(
                    OpKind::Forward,
                    Lane::GpuCompute,
                    device.forward_time(processed, pixels),
                    &deps,
                );
                let bwd = timeline.push(
                    OpKind::Backward,
                    Lane::GpuCompute,
                    device.backward_time(processed, pixels),
                    &[fwd],
                );
                prev = Some(bwd);
            }
            // Fused GPU Adam over the whole model at the end of the batch.
            let deps: Vec<_> = prev.into_iter().collect();
            timeline.push(
                OpKind::GpuAdamUpdate,
                Lane::GpuCompute,
                device.gpu_adam_time(n_gaussians * params_per_gaussian),
                &deps,
            );
        }
        SystemKind::NaiveOffload => {
            // Figure 3: load ALL parameters, train the batch (one image at a
            // time with gradient accumulation), store ALL gradients, then
            // run CPU Adam over everything — strictly sequentially.
            let all_param_bytes = n_gaussians * params_per_gaussian * 4;
            let load = timeline.push_with_bytes(
                OpKind::LoadParams,
                Lane::GpuComm,
                device.transfer_time(all_param_bytes),
                all_param_bytes,
                &[],
            );
            let mut prev = load;
            for s in stats {
                // Naive offloading also adopts pre-rendering frustum culling
                // (§6.1), so compute scales with the working set.
                let fwd = timeline.push(
                    OpKind::Forward,
                    Lane::GpuCompute,
                    device.forward_time(s.working_set, pixels),
                    &[prev],
                );
                let bwd = timeline.push(
                    OpKind::Backward,
                    Lane::GpuCompute,
                    device.backward_time(s.working_set, pixels),
                    &[fwd],
                );
                prev = bwd;
            }
            let store = timeline.push_with_bytes(
                OpKind::StoreGrads,
                Lane::GpuComm,
                device.transfer_time(all_param_bytes),
                all_param_bytes,
                &[prev],
            );
            timeline.push(
                OpKind::CpuAdamUpdate,
                Lane::CpuAdam,
                device.cpu_adam_time(n_gaussians * params_per_gaussian),
                &[store],
            );
        }
        SystemKind::Clm => {
            // Frustum culling (on the GPU, over selection-critical
            // attributes) plus TSP ordering (on the CPU) before the batch.
            let cull = timeline.push(
                OpKind::Scheduling,
                Lane::GpuCompute,
                device.forward_time(n_gaussians, 0) * 0.05,
                &[],
            );
            let tsp = timeline.push(OpKind::Scheduling, Lane::CpuScheduler, 1.0e-3, &[cull]);

            let mut prev_bwd: Option<sim_device::OpId> = None;
            let mut pending_store: Option<sim_device::OpId> = None;
            for s in stats {
                let load_bytes = s.fetched * NON_CRITICAL_BYTES as u64;
                let mut load_deps = vec![tsp];
                if let Some(b) = prev_bwd {
                    // Double buffering: the load for micro-batch i+1 may
                    // overlap the compute of micro-batch i but not run
                    // further ahead.
                    load_deps.push(b);
                }
                let load = timeline.push_with_bytes(
                    OpKind::LoadParams,
                    Lane::GpuComm,
                    device.transfer_time(load_bytes),
                    load_bytes,
                    &load_deps,
                );
                let cached = s.working_set.saturating_sub(s.fetched);
                let cache_copy = timeline.push(
                    OpKind::CacheCopy,
                    Lane::GpuComm,
                    // On-GPU copies are an order of magnitude faster than PCIe.
                    device.transfer_time(cached * NON_CRITICAL_BYTES as u64) / 10.0,
                    &[load],
                );
                let mut fwd_deps = vec![load, cache_copy];
                if let Some(b) = prev_bwd {
                    fwd_deps.push(b);
                }
                let fwd = timeline.push(
                    OpKind::Forward,
                    Lane::GpuCompute,
                    device.forward_time(s.working_set, pixels),
                    &fwd_deps,
                );
                let bwd = timeline.push(
                    OpKind::Backward,
                    Lane::GpuCompute,
                    device.backward_time(s.working_set, pixels),
                    &[fwd],
                );
                let store_bytes = s.grads_stored * GRADIENT_BYTES as u64;
                let store = timeline.push_with_bytes(
                    OpKind::StoreGrads,
                    Lane::GpuComm,
                    device.transfer_time(store_bytes),
                    store_bytes,
                    &[bwd],
                );
                // Overlapped CPU Adam for the Gaussians finalised here.
                timeline.push(
                    OpKind::CpuAdamUpdate,
                    Lane::CpuAdam,
                    device.cpu_adam_time(s.finalized * params_per_gaussian),
                    &[store],
                );
                prev_bwd = Some(bwd);
                pending_store = Some(store);
            }
            let _ = pending_store;
        }
    }

    let makespan = timeline.makespan();
    let last_store_end = timeline
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::StoreGrads)
        .map(|o| o.end)
        .fold(0.0f64, f64::max);
    let adam_end = timeline
        .ops()
        .iter()
        .filter(|o| o.kind == OpKind::CpuAdamUpdate)
        .map(|o| o.end)
        .fold(0.0f64, f64::max);
    let adam_trailing_time = (adam_end - last_store_end).max(0.0);
    let scheduling_time = timeline.time_by_kind(OpKind::Scheduling);

    BatchSimulation {
        system,
        images: stats.len(),
        throughput: if makespan > 0.0 {
            stats.len() as f64 / makespan
        } else {
            0.0
        },
        bytes_loaded: timeline.bytes_by_kind(OpKind::LoadParams),
        bytes_stored: timeline.bytes_by_kind(OpKind::StoreGrads),
        adam_trailing_time,
        scheduling_time,
        timeline,
    }
}

/// Tracks the peak GPU memory a simulated run would need and reports it
/// through a [`MemoryPool`], returning the pool for inspection or the OOM
/// error if the estimate exceeds capacity.
pub fn check_memory_fit(
    system: SystemKind,
    device: &DeviceProfile,
    scene: &SceneProfile,
    n_gaussians: u64,
) -> Result<MemoryPool, sim_device::OutOfMemory> {
    let estimate = gpu_memory_required(system, n_gaussians, scene);
    let mut pool = MemoryPool::new(format!("{} GPU", device.name), device.usable_gpu_memory());
    pool.allocate(MemoryCategory::ModelState, estimate.model_state)?;
    pool.allocate(MemoryCategory::Activation, estimate.activation)?;
    pool.allocate(MemoryCategory::TransferBuffer, estimate.buffers)?;
    pool.allocate(MemoryCategory::Other, estimate.other)?;
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gs_scene::{generate_dataset, DatasetConfig, SceneKind, SceneSpec};

    fn bigcity_profile() -> SceneProfile {
        SceneProfile {
            name: "BigCity".into(),
            resolution: (1920, 1080),
            batch_size: 64,
            rho_mean: 0.0039,
            rho_max: 0.0106,
            cache_hit_rate: 0.15,
            overlap_fraction: 0.6,
        }
    }

    fn bicycle_profile() -> SceneProfile {
        SceneProfile {
            name: "Bicycle".into(),
            resolution: (3840, 2160),
            batch_size: 4,
            rho_mean: 0.35,
            rho_max: 0.6,
            cache_hit_rate: 0.5,
            overlap_fraction: 0.4,
        }
    }

    #[test]
    fn model_state_bytes_ranking() {
        assert_eq!(
            gpu_model_state_bytes_per_gaussian(SystemKind::Baseline),
            944
        );
        assert_eq!(
            gpu_model_state_bytes_per_gaussian(SystemKind::NaiveOffload),
            472
        );
        assert_eq!(gpu_model_state_bytes_per_gaussian(SystemKind::Clm), 160);
    }

    #[test]
    fn max_model_size_ordering_matches_figure8() {
        // Figure 8: CLM > naive offloading > enhanced baseline >= baseline,
        // on both testbeds.
        for device in [DeviceProfile::rtx4090(), DeviceProfile::rtx2080ti()] {
            let scene = bigcity_profile();
            let base = max_trainable_gaussians(SystemKind::Baseline, &device, &scene);
            let enh = max_trainable_gaussians(SystemKind::EnhancedBaseline, &device, &scene);
            let naive = max_trainable_gaussians(SystemKind::NaiveOffload, &device, &scene);
            let clm = max_trainable_gaussians(SystemKind::Clm, &device, &scene);
            assert!(base <= enh, "{}: {base} vs {enh}", device.name);
            assert!(enh < naive, "{}: {enh} vs {naive}", device.name);
            assert!(naive < clm, "{}: {naive} vs {clm}", device.name);
            // CLM's advantage over the enhanced baseline is severalfold
            // (the paper reports up to 6.1x).
            assert!(
                clm as f64 / enh as f64 > 3.0,
                "{}: ratio {}",
                device.name,
                clm as f64 / enh as f64
            );
        }
    }

    #[test]
    fn rtx4090_capacities_are_in_the_paper_ballpark() {
        // Figure 8b (BigCity): baseline ~15M, naive ~46M, CLM ~102M.  The
        // cost-model constants are calibrated, not fitted, so allow wide
        // bands — the point is the order of magnitude and the ratios.
        let device = DeviceProfile::rtx4090();
        let scene = bigcity_profile();
        let base = max_trainable_gaussians(SystemKind::Baseline, &device, &scene);
        let clm = max_trainable_gaussians(SystemKind::Clm, &device, &scene);
        assert!((10_000_000..35_000_000).contains(&base), "baseline {base}");
        assert!((60_000_000..160_000_000).contains(&clm), "clm {clm}");
    }

    #[test]
    fn memory_breakdown_total_is_consistent() {
        let scene = bigcity_profile();
        for system in SystemKind::ALL {
            let est = gpu_memory_required(system, 15_300_000, &scene);
            assert_eq!(est.total(), est.model_state + est.others());
        }
        // CLM uses the least GPU memory at equal model size (Figure 10).
        let clm = gpu_memory_required(SystemKind::Clm, 15_300_000, &scene).total();
        for system in [
            SystemKind::Baseline,
            SystemKind::EnhancedBaseline,
            SystemKind::NaiveOffload,
        ] {
            assert!(
                gpu_memory_required(system, 15_300_000, &scene).total() > clm,
                "{system}"
            );
        }
    }

    #[test]
    fn check_memory_fit_matches_estimate() {
        let device = DeviceProfile::rtx4090();
        let scene = bigcity_profile();
        let n_ok = max_trainable_gaussians(SystemKind::Clm, &device, &scene);
        assert!(check_memory_fit(SystemKind::Clm, &device, &scene, n_ok).is_ok());
        assert!(check_memory_fit(SystemKind::Clm, &device, &scene, n_ok * 2).is_err());
    }

    #[test]
    fn clm_is_faster_than_naive_offloading() {
        // Figures 11/13: CLM overlaps communication and CPU Adam with
        // compute, so at equal model size it has strictly higher throughput.
        for device in [DeviceProfile::rtx4090(), DeviceProfile::rtx2080ti()] {
            let scene = bigcity_profile();
            let n = 46_000_000;
            let stats_cached = synthetic_microbatch_stats(&scene, n, true);
            let clm = simulate_batch(SystemKind::Clm, &device, &scene, n, &stats_cached);
            let naive = simulate_batch(SystemKind::NaiveOffload, &device, &scene, n, &stats_cached);
            let speedup = clm.throughput / naive.throughput;
            assert!(
                speedup > 1.2,
                "{}: CLM {} img/s vs naive {} img/s",
                device.name,
                clm.throughput,
                naive.throughput
            );
            // CLM also moves far fewer bytes.
            assert!(clm.bytes_loaded < naive.bytes_loaded / 4);
        }
    }

    #[test]
    fn clm_overhead_vs_enhanced_baseline_is_modest() {
        // Figure 12: CLM achieves a large fraction of the enhanced
        // baseline's throughput, and the fraction is higher on the slower
        // GPU (more time to hide communication behind).
        let scene = bicycle_profile();
        let n = 15_000_000;
        let ratio = |device: &DeviceProfile| {
            let stats = synthetic_microbatch_stats(&scene, n, true);
            let clm = simulate_batch(SystemKind::Clm, device, &scene, n, &stats);
            let enh = simulate_batch(SystemKind::EnhancedBaseline, device, &scene, n, &stats);
            clm.throughput / enh.throughput
        };
        let r4090 = ratio(&DeviceProfile::rtx4090());
        let r2080 = ratio(&DeviceProfile::rtx2080ti());
        assert!(r4090 > 0.4 && r4090 <= 1.05, "4090 ratio {r4090}");
        assert!(r2080 > 0.6 && r2080 <= 1.05, "2080 ratio {r2080}");
        assert!(
            r2080 >= r4090 - 0.05,
            "slower GPU should hide overheads better: {r2080} vs {r4090}"
        );
    }

    #[test]
    fn enhanced_baseline_beats_baseline_on_sparse_scenes() {
        // Figure 12 explanation (§5.1): pre-rendering frustum culling helps
        // most when rho is low.
        let device = DeviceProfile::rtx4090();
        let scene = bigcity_profile();
        let n = 15_300_000;
        let stats = synthetic_microbatch_stats(&scene, n, true);
        let base = simulate_batch(SystemKind::Baseline, &device, &scene, n, &stats);
        let enh = simulate_batch(SystemKind::EnhancedBaseline, &device, &scene, n, &stats);
        assert!(enh.throughput / base.throughput > 2.0);
    }

    #[test]
    fn caching_reduces_loaded_bytes() {
        let device = DeviceProfile::rtx4090();
        let scene = bicycle_profile();
        let n = 20_000_000;
        let cached = simulate_batch(
            SystemKind::Clm,
            &device,
            &scene,
            n,
            &synthetic_microbatch_stats(&scene, n, true),
        );
        let uncached = simulate_batch(
            SystemKind::Clm,
            &device,
            &scene,
            n,
            &synthetic_microbatch_stats(&scene, n, false),
        );
        assert!(cached.bytes_loaded < uncached.bytes_loaded);
    }

    #[test]
    fn microbatch_stats_from_sets_are_consistent() {
        let sets = vec![
            VisibilitySet::from_unsorted(vec![1, 2, 3]),
            VisibilitySet::from_unsorted(vec![2, 3, 4]),
            VisibilitySet::from_unsorted(vec![4, 5]),
        ];
        let stats = microbatch_stats_from_sets(&sets);
        assert_eq!(stats.len(), 3);
        assert_eq!(stats[0].working_set, 3);
        assert_eq!(stats[0].fetched, 3);
        assert_eq!(stats[1].fetched, 1); // only {4}
        assert_eq!(stats[2].fetched, 1); // only {5}
                                         // Total finalized equals the union size.
        let total: u64 = stats.iter().map(|s| s.finalized).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn scene_profile_measurement_runs_on_synthetic_data() {
        let dataset = generate_dataset(&SceneSpec::of(SceneKind::Rubble), &DatasetConfig::tiny());
        let profile = SceneProfile::measure(&dataset, OrderingStrategy::Tsp, 0);
        assert!(profile.rho_mean > 0.0 && profile.rho_mean <= 1.0);
        assert!(profile.rho_max >= profile.rho_mean);
        assert!((0.0..=1.0).contains(&profile.cache_hit_rate));
        assert!((0.0..=1.0).contains(&profile.overlap_fraction));
        assert_eq!(profile.batch_size, 8);
    }
}
