//! TSP solver for pipeline order optimisation (§4.2.3, Appendix A.1).
//!
//! CLM schedules the micro-batches of a batch so that consecutive
//! micro-batches share as many Gaussians as possible.  Each micro-batch is a
//! node; the distance between two micro-batches is the size of the symmetric
//! difference of their visibility sets `|S_i ⊕ S_j|`; the best order is the
//! shortest Hamiltonian *path*.  Because the distance is a metric (it
//! satisfies the triangle inequality — see the property test in
//! `gs-core::visibility`), stochastic local search with the classic 2-opt /
//! 3-opt (Or-opt) moves converges to (near-)optimal tours very quickly for
//! the small instance sizes a training batch produces.

use gs_core::visibility::VisibilitySet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Configuration of the stochastic local search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TspConfig {
    /// Wall-clock budget for the improvement loop (the paper uses 1 ms).
    pub time_limit: Duration,
    /// Hard cap on improvement sweeps (a safety net for tests on machines
    /// with coarse clocks).
    pub max_sweeps: usize,
    /// RNG seed for the initial-tour start node and restart perturbations.
    pub seed: u64,
}

impl Default for TspConfig {
    fn default() -> Self {
        TspConfig {
            time_limit: Duration::from_millis(1),
            max_sweeps: 64,
            seed: 0,
        }
    }
}

/// A symmetric distance matrix between micro-batches.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<u64>,
}

impl DistanceMatrix {
    /// Builds the `|S_i ⊕ S_j|` matrix from per-view visibility sets.
    pub fn from_visibility(sets: &[VisibilitySet]) -> Self {
        let n = sets.len();
        let mut data = vec![0u64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sets[i].symmetric_difference_len(&sets[j]) as u64;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix { n, data }
    }

    /// Builds a matrix from an explicit row-major slice (for tests).
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_raw(n: usize, data: Vec<u64>) -> Self {
        assert_eq!(data.len(), n * n, "distance matrix must be n×n");
        DistanceMatrix { n, data }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between nodes `i` and `j`.
    pub fn dist(&self, i: usize, j: usize) -> u64 {
        self.data[i * self.n + j]
    }

    /// Total length of a Hamiltonian path visiting `tour` in order.
    pub fn path_length(&self, tour: &[usize]) -> u64 {
        tour.windows(2).map(|w| self.dist(w[0], w[1])).sum()
    }
}

/// Result of a TSP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct TspSolution {
    /// Visit order (a permutation of `0..n`).
    pub tour: Vec<usize>,
    /// Total path length under the distance matrix.
    pub length: u64,
    /// Length of the greedy nearest-neighbour tour the search started from.
    pub initial_length: u64,
    /// Number of improvement sweeps performed.
    pub sweeps: usize,
}

/// Solves the Hamiltonian-path problem with nearest-neighbour construction
/// followed by 2-opt and Or-opt stochastic local search.
///
/// Returns the identity tour for 0- and 1-node instances.
pub fn solve(matrix: &DistanceMatrix, config: &TspConfig) -> TspSolution {
    let n = matrix.len();
    if n <= 1 {
        return TspSolution {
            tour: (0..n).collect(),
            length: 0,
            initial_length: 0,
            sweeps: 0,
        };
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = rng.gen_range(0..n);
    let mut tour = nearest_neighbor_tour(matrix, start);
    let initial_length = matrix.path_length(&tour);

    let deadline = Instant::now() + config.time_limit;
    let mut sweeps = 0;
    while sweeps < config.max_sweeps {
        sweeps += 1;
        let improved_2opt = two_opt_sweep(matrix, &mut tour);
        let improved_oropt = or_opt_sweep(matrix, &mut tour);
        if !(improved_2opt || improved_oropt) {
            break;
        }
        if Instant::now() >= deadline && sweeps >= 1 {
            break;
        }
    }
    TspSolution {
        length: matrix.path_length(&tour),
        tour,
        initial_length,
        sweeps,
    }
}

/// Greedy construction: start somewhere, repeatedly hop to the nearest
/// unvisited node.
pub fn nearest_neighbor_tour(matrix: &DistanceMatrix, start: usize) -> Vec<usize> {
    let n = matrix.len();
    assert!(start < n, "start node {start} out of range");
    let mut visited = vec![false; n];
    let mut tour = Vec::with_capacity(n);
    let mut current = start;
    visited[current] = true;
    tour.push(current);
    for _ in 1..n {
        let next = (0..n)
            .filter(|&j| !visited[j])
            .min_by_key(|&j| matrix.dist(current, j))
            .expect("unvisited node must exist");
        visited[next] = true;
        tour.push(next);
        current = next;
    }
    tour
}

/// One full 2-opt sweep over the path; returns whether any improving move
/// was applied.  For a path (rather than a cycle) reversing the segment
/// `[i, j]` only changes the two boundary edges.
fn two_opt_sweep(matrix: &DistanceMatrix, tour: &mut [usize]) -> bool {
    let n = tour.len();
    let mut improved = false;
    for i in 0..n - 1 {
        for j in (i + 1)..n {
            // Edges removed: (i-1, i) and (j, j+1); edges added: (i-1, j) and (i, j+1).
            let before_left = if i == 0 {
                0
            } else {
                matrix.dist(tour[i - 1], tour[i])
            };
            let after_left = if i == 0 {
                0
            } else {
                matrix.dist(tour[i - 1], tour[j])
            };
            let before_right = if j + 1 == n {
                0
            } else {
                matrix.dist(tour[j], tour[j + 1])
            };
            let after_right = if j + 1 == n {
                0
            } else {
                matrix.dist(tour[i], tour[j + 1])
            };
            if after_left + after_right < before_left + before_right {
                tour[i..=j].reverse();
                improved = true;
            }
        }
    }
    improved
}

/// One Or-opt sweep (a restricted 3-opt): move a segment of 1–3 nodes to a
/// different position.  Returns whether any improving move was applied.
fn or_opt_sweep(matrix: &DistanceMatrix, tour: &mut Vec<usize>) -> bool {
    let n = tour.len();
    let mut improved = false;
    for seg_len in 1..=3usize.min(n.saturating_sub(1)) {
        let mut i = 0;
        while i + seg_len <= tour.len() {
            let current_len = matrix.path_length(tour);
            let segment: Vec<usize> = tour[i..i + seg_len].to_vec();
            let mut rest: Vec<usize> = Vec::with_capacity(tour.len() - seg_len);
            rest.extend_from_slice(&tour[..i]);
            rest.extend_from_slice(&tour[i + seg_len..]);
            let mut best: Option<(usize, u64)> = None;
            for pos in 0..=rest.len() {
                if pos == i {
                    continue;
                }
                let mut candidate = rest.clone();
                candidate.splice(pos..pos, segment.iter().copied());
                let len = matrix.path_length(&candidate);
                if len < current_len && best.map(|(_, b)| len < b).unwrap_or(true) {
                    best = Some((pos, len));
                }
            }
            if let Some((pos, _)) = best {
                let mut candidate = rest;
                candidate.splice(pos..pos, segment.iter().copied());
                *tour = candidate;
                improved = true;
            }
            i += 1;
        }
    }
    improved
}

/// Exact solver by exhaustive permutation search; only feasible for tiny
/// instances (n ≤ 9).  Used to validate the heuristic in tests and in the
/// `bench_tsp` ablation.
///
/// # Panics
/// Panics if `matrix.len() > 9`.
pub fn solve_exact(matrix: &DistanceMatrix) -> TspSolution {
    let n = matrix.len();
    assert!(n <= 9, "exhaustive TSP only supported for n <= 9, got {n}");
    if n <= 1 {
        return TspSolution {
            tour: (0..n).collect(),
            length: 0,
            initial_length: 0,
            sweeps: 0,
        };
    }
    let mut best_tour: Vec<usize> = (0..n).collect();
    let mut best_len = matrix.path_length(&best_tour);
    let mut perm: Vec<usize> = (0..n).collect();
    permute(&mut perm, 0, &mut |p| {
        let len = matrix.path_length(p);
        if len < best_len {
            best_len = len;
            best_tour = p.to_vec();
        }
    });
    TspSolution {
        tour: best_tour,
        initial_length: best_len,
        length: best_len,
        sweeps: 0,
    }
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn line_matrix(n: usize) -> DistanceMatrix {
        // Nodes on a line: d(i, j) = |i - j| * 10.
        let mut data = vec![0u64; n * n];
        for i in 0..n {
            for j in 0..n {
                data[i * n + j] = (i as i64 - j as i64).unsigned_abs() * 10;
            }
        }
        DistanceMatrix::from_raw(n, data)
    }

    #[test]
    fn trivial_instances() {
        let empty = DistanceMatrix::from_visibility(&[]);
        assert!(solve(&empty, &TspConfig::default()).tour.is_empty());
        let single = line_matrix(1);
        assert_eq!(solve(&single, &TspConfig::default()).tour, vec![0]);
    }

    #[test]
    fn solver_finds_optimal_line_order() {
        // The optimal Hamiltonian path on a line visits nodes monotonically;
        // its length is (n-1) * 10.
        let matrix = line_matrix(8);
        let sol = solve(&matrix, &TspConfig::default());
        assert_eq!(sol.length, 70, "tour {:?}", sol.tour);
        assert!(sol.length <= sol.initial_length);
        let mut sorted = sol.tour.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..8).collect::<Vec<_>>(),
            "tour must be a permutation"
        );
    }

    #[test]
    fn heuristic_matches_exact_on_small_random_instances() {
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n = 7;
            // Random points on a line => metric instance.
            let coords: Vec<i64> = (0..n)
                .map(|_| rand::Rng::gen_range(&mut rng, 0..100))
                .collect();
            let mut data = vec![0u64; n * n];
            for i in 0..n {
                for j in 0..n {
                    data[i * n + j] = (coords[i] - coords[j]).unsigned_abs();
                }
            }
            let matrix = DistanceMatrix::from_raw(n, data);
            let exact = solve_exact(&matrix);
            let heuristic = solve(
                &matrix,
                &TspConfig {
                    seed,
                    ..Default::default()
                },
            );
            assert_eq!(
                heuristic.length, exact.length,
                "seed {seed}: heuristic {} vs exact {}",
                heuristic.length, exact.length
            );
        }
    }

    #[test]
    fn visibility_matrix_is_symmetric_with_zero_diagonal() {
        let sets = vec![
            VisibilitySet::from_unsorted(vec![1, 2, 3]),
            VisibilitySet::from_unsorted(vec![2, 3, 4]),
            VisibilitySet::from_unsorted(vec![10, 11]),
        ];
        let m = DistanceMatrix::from_visibility(&sets);
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            assert_eq!(m.dist(i, i), 0);
            for j in 0..3 {
                assert_eq!(m.dist(i, j), m.dist(j, i));
            }
        }
        assert_eq!(m.dist(0, 1), 2);
        assert_eq!(m.dist(0, 2), 5);
    }

    #[test]
    fn tsp_order_groups_overlapping_views() {
        // Two spatial clusters of views; the optimal order keeps clusters
        // contiguous instead of ping-ponging between them.
        let cluster_a: Vec<VisibilitySet> = (0..3)
            .map(|i| VisibilitySet::from_unsorted((i..i + 20).collect()))
            .collect();
        let cluster_b: Vec<VisibilitySet> = (0..3)
            .map(|i| VisibilitySet::from_unsorted((1000 + i..1020 + i).collect()))
            .collect();
        // Interleave them badly.
        let sets = vec![
            cluster_a[0].clone(),
            cluster_b[0].clone(),
            cluster_a[1].clone(),
            cluster_b[1].clone(),
            cluster_a[2].clone(),
            cluster_b[2].clone(),
        ];
        let matrix = DistanceMatrix::from_visibility(&sets);
        let sol = solve(&matrix, &TspConfig::default());
        let interleaved_length = matrix.path_length(&[0, 1, 2, 3, 4, 5]);
        assert!(
            sol.length < interleaved_length,
            "TSP ({}) should beat the interleaved order ({})",
            sol.length,
            interleaved_length
        );
        // The solution crosses between clusters exactly once.
        let cluster_of = |node: usize| usize::from(node % 2 == 1);
        let crossings = sol
            .tour
            .windows(2)
            .filter(|w| cluster_of(w[0]) != cluster_of(w[1]))
            .count();
        assert_eq!(crossings, 1, "tour {:?}", sol.tour);
    }

    proptest! {
        #[test]
        fn prop_solver_never_worse_than_greedy_and_is_permutation(
            raw in proptest::collection::vec(proptest::collection::vec(0u32..80, 1..25), 2..10),
            seed in 0u64..100
        ) {
            let sets: Vec<VisibilitySet> =
                raw.into_iter().map(VisibilitySet::from_unsorted).collect();
            let matrix = DistanceMatrix::from_visibility(&sets);
            let sol = solve(&matrix, &TspConfig { seed, ..Default::default() });
            prop_assert!(sol.length <= sol.initial_length);
            let mut sorted = sol.tour.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..sets.len()).collect::<Vec<_>>());
        }
    }
}
