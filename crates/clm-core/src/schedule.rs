//! Overlapped CPU Adam planning (§4.2.2).
//!
//! Within a batch, the last micro-batch that touches a Gaussian `g` is
//! `L_g = max{ i | g ∈ S_i }`.  After micro-batch `L_g` finishes, `g`'s
//! accumulated gradient is final, so its Adam update can run on the CPU
//! thread while later micro-batches are still computing on the GPU.  Only
//! Gaussians finalised by the *last* micro-batch cannot be overlapped.
//! [`FinalizationPlan`] groups the batch's Gaussians by their finalising
//! micro-batch.

use gs_core::visibility::VisibilitySet;

/// Grouping of a batch's touched Gaussians by the micro-batch that
/// finalises them.
#[derive(Debug, Clone, PartialEq)]
pub struct FinalizationPlan {
    /// `groups[i]` = Gaussians whose last access is micro-batch `i`
    /// (in processing order).
    groups: Vec<VisibilitySet>,
}

impl FinalizationPlan {
    /// Builds the plan from the batch's visibility sets **in processing
    /// order**.
    pub fn new(ordered_sets: &[VisibilitySet]) -> Self {
        let n = ordered_sets.len();
        let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n];
        // A Gaussian is finalised by the last set containing it: walk from
        // the back and keep the first (i.e. latest) occurrence.
        let mut assigned = VisibilitySet::new();
        for i in (0..n).rev() {
            let fresh = ordered_sets[i].difference(&assigned);
            groups[i] = fresh.indices().to_vec();
            assigned = assigned.union(&fresh);
        }
        FinalizationPlan {
            groups: groups.into_iter().map(VisibilitySet::from_sorted).collect(),
        }
    }

    /// Number of micro-batches covered by the plan.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the plan covers no micro-batches.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Gaussians finalised by micro-batch `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn finalized_by(&self, i: usize) -> &VisibilitySet {
        &self.groups[i]
    }

    /// All groups in processing order.
    pub fn groups(&self) -> &[VisibilitySet] {
        &self.groups
    }

    /// Total number of distinct Gaussians touched by the batch.
    pub fn total_touched(&self) -> usize {
        self.groups.iter().map(VisibilitySet::len).sum()
    }

    /// Number of Gaussians whose CPU Adam update can be overlapped with
    /// later GPU work (everything not finalised by the last micro-batch).
    pub fn overlappable(&self) -> usize {
        if self.groups.is_empty() {
            0
        } else {
            self.total_touched() - self.groups.last().unwrap().len()
        }
    }

    /// Fraction of touched Gaussians whose update can be overlapped.
    pub fn overlap_fraction(&self) -> f64 {
        let total = self.total_touched();
        if total == 0 {
            0.0
        } else {
            self.overlappable() as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn set(v: &[u32]) -> VisibilitySet {
        VisibilitySet::from_unsorted(v.to_vec())
    }

    #[test]
    fn finalization_groups_by_last_access() {
        // Gaussian 1 appears only in micro-batch 0; 2 in 0 and 1; 3 in 1 and
        // 2; 4 only in 2.
        let sets = vec![set(&[1, 2]), set(&[2, 3]), set(&[3, 4])];
        let plan = FinalizationPlan::new(&sets);
        assert_eq!(plan.finalized_by(0).indices(), &[1]);
        assert_eq!(plan.finalized_by(1).indices(), &[2]);
        assert_eq!(plan.finalized_by(2).indices(), &[3, 4]);
        assert_eq!(plan.total_touched(), 4);
        assert_eq!(plan.overlappable(), 2);
        assert!((plan.overlap_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn groups_are_disjoint_and_cover_the_union() {
        let sets = vec![set(&[1, 2, 3]), set(&[3, 4]), set(&[1, 5])];
        let plan = FinalizationPlan::new(&sets);
        let mut union = VisibilitySet::new();
        for g in plan.groups() {
            assert_eq!(union.intersection_len(g), 0, "groups must be disjoint");
            union = union.union(g);
        }
        let mut expected = VisibilitySet::new();
        for s in &sets {
            expected = expected.union(s);
        }
        assert_eq!(union, expected);
        // Gaussian 1 reappears in the last micro-batch, so it is finalised
        // there, not in micro-batch 0.
        assert!(plan.finalized_by(2).contains(1));
        assert!(!plan.finalized_by(0).contains(1));
    }

    #[test]
    fn single_microbatch_has_no_overlap_opportunity() {
        let plan = FinalizationPlan::new(&[set(&[1, 2, 3])]);
        assert_eq!(plan.overlappable(), 0);
        assert_eq!(plan.overlap_fraction(), 0.0);
    }

    #[test]
    fn empty_batch() {
        let plan = FinalizationPlan::new(&[]);
        assert!(plan.is_empty());
        assert_eq!(plan.total_touched(), 0);
        assert_eq!(plan.overlap_fraction(), 0.0);
    }

    #[test]
    fn disjoint_microbatches_overlap_everything_but_the_last() {
        let sets = vec![set(&[1, 2]), set(&[3, 4]), set(&[5, 6])];
        let plan = FinalizationPlan::new(&sets);
        assert_eq!(plan.overlappable(), 4);
        assert_eq!(plan.finalized_by(0), &sets[0]);
    }

    proptest! {
        #[test]
        fn prop_groups_partition_the_union(
            raw in proptest::collection::vec(proptest::collection::vec(0u32..80, 0..40), 1..10)
        ) {
            let sets: Vec<VisibilitySet> =
                raw.into_iter().map(VisibilitySet::from_unsorted).collect();
            let plan = FinalizationPlan::new(&sets);
            prop_assert_eq!(plan.len(), sets.len());
            let mut union = VisibilitySet::new();
            let mut total = 0usize;
            for g in plan.groups() {
                prop_assert_eq!(union.intersection_len(g), 0);
                union = union.union(g);
                total += g.len();
            }
            let mut expected = VisibilitySet::new();
            for s in &sets {
                expected = expected.union(s);
            }
            prop_assert_eq!(&union, &expected);
            prop_assert_eq!(total, expected.len());
            // Every Gaussian in group i is indeed in S_i and in no later set.
            for (i, g) in plan.groups().iter().enumerate() {
                prop_assert_eq!(g.intersection_len(&sets[i]), g.len());
                for later in &sets[i + 1..] {
                    prop_assert_eq!(g.intersection_len(later), 0);
                }
            }
        }
    }
}
