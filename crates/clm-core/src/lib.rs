//! CLM: sparsity-guided CPU offloading for 3D Gaussian Splatting training.
//!
//! This crate is the reproduction of the CLM paper's contribution.  It lets
//! 3DGS training scale past GPU memory by keeping only what each micro-batch
//! needs on the GPU:
//!
//! * [`offload`] — attribute-wise offload: selection-critical attributes
//!   (position/scale/rotation) stay GPU-resident for frustum culling, the
//!   rest lives in pinned host memory and is gathered on demand (§4.1, §5.2);
//! * [`cache`] — precise Gaussian caching between consecutive micro-batches
//!   (§4.2.1);
//! * [`order`] / [`tsp`] — pipeline order optimisation: micro-batches are
//!   sequenced by a metric-TSP over symmetric-difference distances to
//!   maximise cache reuse and early finalisation (§4.2.3, Appendix A.1);
//! * [`schedule`] — overlapped CPU Adam: each Gaussian's Adam update runs as
//!   soon as its gradients are final (§4.2.2);
//! * [`perf`] — the analytic performance/memory model that reproduces the
//!   paper-scale experiments (max model size, throughput, communication
//!   volume, memory breakdowns, utilisation) against the simulated device;
//! * [`train`] — functional trainers that run real (reduced-scale) 3DGS
//!   training under CLM, naive offloading and the two GPU-only baselines,
//!   and demonstrate that the strategies are numerically equivalent.
//!
//! # Example
//!
//! ```
//! use clm_core::{SystemKind, SceneProfile, max_trainable_gaussians};
//! use sim_device::DeviceProfile;
//!
//! // How many Gaussians fit on an RTX 4090 for a BigCity-like scene?
//! let scene = SceneProfile {
//!     name: "BigCity".into(),
//!     resolution: (1920, 1080),
//!     batch_size: 64,
//!     rho_mean: 0.0039,
//!     rho_max: 0.0106,
//!     cache_hit_rate: 0.15,
//!     overlap_fraction: 0.6,
//! };
//! let device = DeviceProfile::rtx4090();
//! let clm = max_trainable_gaussians(SystemKind::Clm, &device, &scene);
//! let baseline = max_trainable_gaussians(SystemKind::Baseline, &device, &scene);
//! assert!(clm > 3 * baseline);
//! ```

pub mod cache;
pub mod offload;
pub mod order;
pub mod perf;
pub mod schedule;
pub mod train;
pub mod tsp;

pub use cache::{batch_fetch_bytes, batch_fetch_bytes_no_cache, batch_store_bytes, CachePlan};
pub use offload::{
    gather_rows_into, OffloadedModel, GRADIENT_BYTES, NON_CRITICAL_BYTES, SELECTION_CRITICAL_BYTES,
};
pub use order::{order_batch, ordered_fetch_bytes, OrderingStrategy};
pub use perf::{
    check_memory_fit, gpu_memory_required, max_trainable_gaussians, microbatch_stats_from_sets,
    pinned_memory_required, simulate_batch, synthetic_microbatch_stats, BatchSimulation,
    MemoryEstimate, MicrobatchStats, SceneProfile, SystemKind,
};
pub use schedule::FinalizationPlan;
pub use train::{
    ground_truth_images, BatchPlan, BatchReport, DensifySchedule, TrainConfig, Trainer,
};
// The resize-event vocabulary the trainers speak at densification
// boundaries (planned in `gs_scene`, emitted through `BatchPlan::resize`).
pub use gs_scene::{DensifyConfig, DensifyReport, ResizeAction, ResizeEvent};
pub use tsp::{solve, solve_exact, DistanceMatrix, TspConfig, TspSolution};
