//! Workspace root crate for the CLM reproduction.
//!
//! This crate only re-exports the member crates so that the `examples/` and
//! integration `tests/` at the repository root can reach every subsystem
//! through a single dependency.  The actual functionality lives in:
//!
//! * [`gs_core`] — Gaussian model, cameras, frustum culling, visibility sets.
//! * [`gs_render`] — differentiable CPU rasteriser, losses, PSNR.
//! * [`gs_optim`] — Adam optimiser (dense + sparse) and gradient accumulation.
//! * [`gs_scene`] — synthetic evaluation scenes and densification.
//! * [`sim_device`] — simulated GPU/CPU/PCIe substrate and event timeline.
//! * [`clm_core`] — the CLM offloading system and the baseline trainers.
//! * [`clm_runtime`] — pipelined discrete-event execution engine running the
//!   trainers on the simulated device timeline.
//! * [`clm_trace`] — op-trace capture/replay containers and the `.clmckpt`
//!   checkpoint format.
//! * [`clm_serve`] — the multi-tenant training service: scene registry,
//!   per-session jobs, fairness scheduling, admission control and
//!   checkpoint-based evict/resume.

pub use clm_core;
pub use clm_runtime;
pub use clm_serve;
pub use clm_trace;
pub use gs_core;
pub use gs_optim;
pub use gs_render;
pub use gs_scene;
pub use sim_device;
